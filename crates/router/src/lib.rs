//! # iloc-router
//!
//! Multi-node **scatter-gather serving** atop the wire protocol: an
//! event-driven proxy that speaks the same protocol as `iloc-server`
//! on both sides. Downstream it accepts ordinary protocol clients;
//! upstream it holds pipelined connections to N server nodes, each
//! owning a disjoint slice of the object catalogs (assignment by the
//! same SplitMix64 id hash the in-process sharded engine uses).
//!
//! The correctness bar is **bit-identity**: a cluster of N
//! single-shard nodes behind the router answers every query, commit
//! report, and subscription delta stream exactly as one in-process
//! [`iloc_core::serve::ShardedEngine`] with N shards would. The three
//! mechanisms that buy it:
//!
//! * **Queries** scatter to every node (one pipelined burst: all sends
//!   first, then all receives) and fan in with
//!   [`iloc_core::merge_partials_into`] — the identical concatenate-
//!   then-[`iloc_core::sort_matches`] discipline the sharded engine's
//!   own fan-in uses. Disjoint id partitions plus a deterministic sort
//!   make the merged answer bit-identical. The steady-state path is
//!   **allocation-free once warm**: the forwarded frame, the per-node
//!   partial answers, and the merged answer all live in reusable
//!   loop-owned buffers.
//! * **Updates** split by `shard_of(id, nodes)` so node order *is*
//!   shard order; **commits** fan out to every node, and the router
//!   publishes its own **cluster epoch** only after every node
//!   acknowledged — counters summed, per-shard counts concatenated in
//!   node order (zero-filled for untouched nodes), dirty rectangles
//!   hulled. A node failure mid-commit *poisons* the catalog: the
//!   committing client gets a typed [`ErrorCode::Unavailable`] error
//!   and no torn epoch is ever observable.
//! * **Subscriptions** fan out to every node over the shared write
//!   plane; pushed NOTIFY deltas are collected behind a PING barrier
//!   (the server flushes commit pushes before answering a PING),
//!   merged id-sorted per standing query, stamped with the cluster
//!   epoch, and delivered as a single push stream per subscription.
//!
//! The event loop reuses [`iloc_server::poll`] — the same epoll /
//! `poll(2)` substrate as the server — and the upstream sockets are
//! dialed concurrently with [`iloc_server::poll::connect_nonblocking`]
//! so router startup pays one connect round trip, not N.
//!
//! ## Known limitations (documented trade-offs)
//!
//! * All router subscriptions share one upstream connection per node,
//!   so the node-side per-connection cap bounds the *total* standing
//!   queries across all router clients.
//! * No upstream reconnect: a lost node leaves affected requests
//!   answering [`ErrorCode::Unavailable`] until the router restarts.
//! * The router is transient (`recovered_epoch` 0 in SUB_ACKs); nodes
//!   may individually be durable.
//! * Strict bit-identity with an N-shard oracle requires nodes run
//!   with `--shards 1` — otherwise ids are hashed twice (router then
//!   node) and per-shard counts no longer line up.

#![warn(missing_docs)]

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use iloc_core::serve::{shard_of, CommitReport, Update};
use iloc_core::subscribe::AnswerDelta;
use iloc_core::{merge_partials_into, sort_matches, QueryAnswer};
use iloc_server::client::{Client, ClientError};
use iloc_server::poll::{self, Event, Interest, Poller, WakeReceiver, Waker};
use iloc_server::protocol::{
    self, opcode, CommitTarget, ErrorCode, HelloAck, NodeHealth, Notification, NotifyCause, Role,
    StatsReport, WireError, WireUpdate, PROTOCOL_VERSION,
};
use iloc_server::{alloc_count, MAX_SUBSCRIPTIONS};
use iloc_uncertainty::ObjectId;

/// Token reserved for the wake pipe in each loop's poller.
const WAKE_TOKEN: u64 = u64::MAX;
/// Minimum read size per `read(2)` on a downstream connection.
const READ_CHUNK: usize = 4096;

/// How a [`Router`] listens and reaches its nodes.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Address to bind, e.g. `"127.0.0.1:0"`.
    pub addr: String,
    /// The cluster nodes, in **node order** — the order that defines
    /// the id-hash partition and the shard order of merged commit
    /// reports. All peers must agree on it.
    pub nodes: Vec<SocketAddr>,
    /// Event-loop threads for downstream connections.
    pub event_loops: usize,
    /// Concurrent downstream connection capacity.
    pub max_connections: usize,
    /// Largest accepted frame.
    pub max_frame_len: u32,
    /// Poll timeout — bounds shutdown latency.
    pub idle_poll: Duration,
    /// Buffered output above which a connection stops being read, and
    /// above which a pushed NOTIFY closes it instead of queueing.
    pub push_backlog: usize,
    /// Read timeout on upstream connections: a dead node surfaces as
    /// a typed error instead of a hang.
    pub upstream_timeout: Duration,
    /// Deadline for the initial parallel dial of every upstream
    /// connection.
    pub connect_timeout: Duration,
}

impl RouterConfig {
    /// A loopback config for tests: ephemeral port, two loops.
    pub fn loopback(nodes: Vec<SocketAddr>) -> RouterConfig {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            nodes,
            event_loops: 2,
            max_connections: 256,
            max_frame_len: protocol::MAX_FRAME_LEN,
            idle_poll: Duration::from_millis(25),
            push_backlog: 1 << 20,
            upstream_timeout: Duration::from_secs(5),
            connect_timeout: Duration::from_secs(10),
        }
    }
}

/// Per-node health, mirrored into STATS_REPORT node sections.
struct NodeState {
    connected: AtomicBool,
    point_epoch: AtomicU64,
    uncertain_epoch: AtomicU64,
    routed: AtomicU64,
    merged: AtomicU64,
}

/// One standing query as the router tracks it: the node-assigned ids
/// (index = node), and the downstream connection that owns it.
struct SubEntry {
    target: CommitTarget,
    node_ids: Vec<u64>,
    owner_loop: usize,
    owner_conn: u64,
}

/// The serialized write plane: one upstream client per node carrying
/// every update batch, commit, and subscription. Serializing writes
/// through one lane is what makes the cluster epoch well-defined — a
/// commit observes either all of a batch or none of it on every node.
struct WritePlane {
    clients: Vec<Client>,
    /// Whether any update was routed since the last commit, per
    /// catalog — the cluster-level "pending" flag that decides whether
    /// a COMMIT advances the epoch (mirroring the sharded engine's
    /// empty-commit early-out).
    routed: [bool; 2],
    subs: HashMap<u64, SubEntry>,
    /// `(node, catalog tag, node sub id) -> router sub id`.
    by_node: HashMap<(usize, u8, u64), u64>,
    next_sub_id: u64,
    // Scratch (capacity retained across requests).
    updates: Vec<WireUpdate>,
    node_batches: Vec<Vec<WireUpdate>>,
    reports: Vec<CommitReport>,
    deltas: HashMap<u64, AnswerDelta>,
    tick_delta: AnswerDelta,
    note: Notification,
    sub_partial: QueryAnswer,
    sub_merged: QueryAnswer,
}

/// Cross-loop push delivery: a commit handled on one loop deposits
/// encoded NOTIFY frames here for connections owned by another loop,
/// then wakes it. Deposits are drained at the top of every loop
/// iteration, which (together with the deposit happening *before* the
/// COMMIT_DONE is written) preserves the protocol's push-ordering
/// guarantee: a client that saw a commit acknowledged and then pings a
/// subscriber connection finds the NOTIFY ahead of the PONG.
struct Mailbox {
    deposits: Mutex<Vec<(u64, Vec<u8>)>>,
    waker: Waker,
}

struct Shared {
    nodes: Vec<NodeState>,
    /// Per-node `(point, uncertain)` shard counts from the HELLO
    /// handshake — sizes the zero-fill for untouched nodes in merged
    /// commit reports.
    node_shards: Vec<(u32, u32)>,
    shard_totals: (u32, u32),
    /// The cluster epochs `[point, uncertain]`, published only after
    /// every node acknowledged a commit.
    epochs: [AtomicU64; 2],
    /// Sticky per-catalog failure flags: set when a commit or routed
    /// update batch failed partway, after which the catalog's torn
    /// cluster state must not be observable — every dependent request
    /// answers [`ErrorCode::Unavailable`] until the router restarts.
    poison: [AtomicBool; 2],
    write_plane: Mutex<WritePlane>,
    /// Queries hold this shared; a commit holds it exclusive while the
    /// epoch turns over, so no query ever observes half a commit.
    commit_gate: RwLock<()>,
    mailboxes: Vec<Mailbox>,
    requests_served: AtomicU64,
    connections: AtomicU64,
    dropped_pushes: AtomicU64,
    shutdown: AtomicBool,
    capacity: usize,
    event_loops: u32,
    max_frame_len: u32,
    push_backlog: usize,
    idle_poll: Duration,
}

impl Shared {
    fn deposit(&self, loop_idx: usize, conn_id: u64, frame: Vec<u8>) {
        let mailbox = &self.mailboxes[loop_idx];
        mailbox
            .deposits
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((conn_id, frame));
        mailbox.waker.wake();
    }
}

/// The router. Construct nothing; call [`Router::start`].
#[derive(Debug)]
pub struct Router;

/// A running router: address, shutdown, join.
pub struct RouterHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl RouterHandle {
    /// The bound listening address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// How many upstream nodes the router serves.
    pub fn node_count(&self) -> usize {
        self.shared.nodes.len()
    }

    /// Stops the listener and every event loop, closes all
    /// connections, and joins the threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        for mailbox in &self.shared.mailboxes {
            mailbox.waker.wake();
        }
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Dials `copies` connections to every node concurrently: all connects
/// start non-blocking, one poller waits for the whole fleet, and only
/// then is each socket finished (surfacing any per-socket `SO_ERROR`).
fn dial_fleet(
    nodes: &[SocketAddr],
    copies: usize,
    timeout: Duration,
) -> io::Result<Vec<Vec<TcpStream>>> {
    let mut pending = Vec::with_capacity(nodes.len() * copies);
    for _ in 0..copies {
        for &addr in nodes {
            pending.push(poll::connect_nonblocking(addr)?);
        }
    }
    let mut poller = Poller::new()?;
    let mut waiting = 0usize;
    let mut ready: Vec<bool> = Vec::with_capacity(pending.len());
    for (i, p) in pending.iter().enumerate() {
        ready.push(!p.is_pending());
        if p.is_pending() {
            poller.register(
                p.stream().as_raw_fd(),
                i as u64,
                Interest {
                    readable: false,
                    writable: true,
                },
            )?;
            waiting += 1;
        }
    }
    let deadline = Instant::now() + timeout;
    let mut events = Vec::new();
    while waiting > 0 {
        let now = Instant::now();
        if now >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "timed out connecting to cluster nodes",
            ));
        }
        poller.wait(&mut events, Some(deadline - now))?;
        for ev in &events {
            let i = ev.token as usize;
            if !ready[i] {
                ready[i] = true;
                waiting -= 1;
                poller.deregister(pending[i].stream().as_raw_fd())?;
            }
        }
    }
    let mut streams = pending
        .into_iter()
        .map(|p| p.finish())
        .collect::<io::Result<Vec<_>>>()?
        .into_iter();
    let mut fleets = Vec::with_capacity(copies);
    for _ in 0..copies {
        fleets.push((&mut streams).take(nodes.len()).collect::<Vec<_>>());
    }
    Ok(fleets)
}

impl Router {
    /// Dials every node, performs the HELLO handshake on each upstream
    /// connection, binds the listener, and spawns the accept thread
    /// plus the event loops. Fails if any node is unreachable or
    /// speaks another protocol version.
    pub fn start(config: &RouterConfig) -> io::Result<RouterHandle> {
        if config.nodes.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a router needs at least one node",
            ));
        }
        let n = config.nodes.len();
        let loops = config.event_loops.max(1);

        // One upstream fleet for the write plane plus one per loop for
        // queries, all dialed concurrently.
        let mut fleets = dial_fleet(&config.nodes, loops + 1, config.connect_timeout)?.into_iter();
        let handshake = |streams: Vec<TcpStream>| -> io::Result<Vec<Client>> {
            streams
                .into_iter()
                .map(|s| {
                    let mut client = Client::from_stream(s, Role::Router)?;
                    client.set_read_timeout(Some(config.upstream_timeout))?;
                    Ok(client)
                })
                .collect()
        };
        let write_clients = handshake(fleets.next().expect("write-plane fleet"))?;

        let mut nodes = Vec::with_capacity(n);
        let mut node_shards = Vec::with_capacity(n);
        let mut shard_totals = (0u32, 0u32);
        let mut epochs = (0u64, 0u64);
        for client in &write_clients {
            let ack = *client.hello().expect("handshake stores the ack");
            node_shards.push((ack.point_shards, ack.uncertain_shards));
            shard_totals.0 += ack.point_shards;
            shard_totals.1 += ack.uncertain_shards;
            // A restarted durable cluster resumes from the highest
            // epoch any node recovered to.
            epochs.0 = epochs.0.max(ack.point_epoch);
            epochs.1 = epochs.1.max(ack.uncertain_epoch);
            nodes.push(NodeState {
                connected: AtomicBool::new(true),
                point_epoch: AtomicU64::new(ack.point_epoch),
                uncertain_epoch: AtomicU64::new(ack.uncertain_epoch),
                routed: AtomicU64::new(0),
                merged: AtomicU64::new(0),
            });
        }

        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;

        let mut mailboxes = Vec::with_capacity(loops);
        let mut wake_rxs = Vec::with_capacity(loops);
        for _ in 0..loops {
            let (waker, wake_rx) = poll::waker()?;
            mailboxes.push(Mailbox {
                deposits: Mutex::new(Vec::new()),
                waker,
            });
            wake_rxs.push(wake_rx);
        }

        let shared = Arc::new(Shared {
            nodes,
            node_shards,
            shard_totals,
            epochs: [AtomicU64::new(epochs.0), AtomicU64::new(epochs.1)],
            poison: [AtomicBool::new(false), AtomicBool::new(false)],
            write_plane: Mutex::new(WritePlane {
                clients: write_clients,
                routed: [false, false],
                subs: HashMap::new(),
                by_node: HashMap::new(),
                next_sub_id: 1,
                updates: Vec::new(),
                node_batches: (0..n).map(|_| Vec::new()).collect(),
                reports: Vec::new(),
                deltas: HashMap::new(),
                tick_delta: AnswerDelta::default(),
                note: Notification::default(),
                sub_partial: QueryAnswer::default(),
                sub_merged: QueryAnswer::default(),
            }),
            commit_gate: RwLock::new(()),
            mailboxes,
            requests_served: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            dropped_pushes: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            capacity: config.max_connections,
            event_loops: loops as u32,
            max_frame_len: config.max_frame_len,
            push_backlog: config.push_backlog,
            idle_poll: config.idle_poll,
        });

        let mut threads = Vec::with_capacity(loops + 1);
        let mut conn_txs = Vec::with_capacity(loops);
        for (k, wake_rx) in wake_rxs.into_iter().enumerate() {
            let upstream = handshake(fleets.next().expect("query fleet"))?;
            let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
            conn_txs.push(conn_tx);
            let state = LoopState::new(Arc::clone(&shared), k, upstream);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("iloc-router-loop-{k}"))
                    .spawn(move || state.run(conn_rx, wake_rx))?,
            );
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("iloc-router-accept".to_string())
                    .spawn(move || listener_loop(listener, shared, conn_txs))?,
            );
        }

        Ok(RouterHandle {
            addr,
            shared,
            threads,
        })
    }
}

fn listener_loop(listener: TcpListener, shared: Arc<Shared>, conn_txs: Vec<Sender<TcpStream>>) {
    let mut k = 0usize;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let live = shared.connections.fetch_add(1, Ordering::SeqCst);
                if live >= shared.capacity as u64 {
                    shared.connections.fetch_sub(1, Ordering::SeqCst);
                    continue; // over capacity: close before any frame
                }
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    shared.connections.fetch_sub(1, Ordering::SeqCst);
                    continue;
                }
                let idx = k % conn_txs.len();
                k += 1;
                if conn_txs[idx].send(stream).is_ok() {
                    shared.mailboxes[idx].waker.wake();
                } else {
                    shared.connections.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Why a downstream connection is being torn down.
enum Close {
    /// Peer gone or stream unusable.
    Gone,
}

/// One downstream connection's reassembly and output state.
struct Conn {
    stream: TcpStream,
    id: u64,
    in_buf: Vec<u8>,
    in_len: usize,
    parsed: usize,
    out: Vec<u8>,
    out_at: usize,
    /// End offsets (into `out`) of buffered push frames, so a close
    /// can count the pushes that never fully left.
    push_ends: VecDeque<usize>,
    /// Standing-query counts per catalog (router-side cap, and a fast
    /// "does close need upstream cleanup" check).
    subs: [u32; 2],
    want_read: bool,
    want_write: bool,
    close_after_flush: bool,
}

impl Conn {
    fn pending_out(&self) -> usize {
        self.out.len() - self.out_at
    }
}

/// One event loop: a poller over this loop's downstream connections,
/// its own upstream query clients (so loops never contend on reads),
/// and warm scratch buffers for the allocation-free steady state.
struct LoopState {
    shared: Arc<Shared>,
    loop_idx: usize,
    upstream: Vec<Client>,
    poller: Poller,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_conn_id: u64,
    frame: Vec<u8>,
    partials: Vec<QueryAnswer>,
    merged: QueryAnswer,
    node_stats: Vec<StatsReport>,
    merged_stats: StatsReport,
    deposits_scratch: Vec<(u64, Vec<u8>)>,
}

impl LoopState {
    fn new(shared: Arc<Shared>, loop_idx: usize, upstream: Vec<Client>) -> LoopState {
        let n = upstream.len();
        LoopState {
            shared,
            loop_idx,
            upstream,
            poller: Poller::new().expect("poller"),
            conns: Vec::new(),
            free: Vec::new(),
            next_conn_id: 1,
            frame: Vec::new(),
            partials: (0..n).map(|_| QueryAnswer::default()).collect(),
            merged: QueryAnswer::default(),
            node_stats: (0..n).map(|_| StatsReport::default()).collect(),
            merged_stats: StatsReport::default(),
            deposits_scratch: Vec::new(),
        }
    }

    fn run(mut self, conn_rx: Receiver<TcpStream>, wake_rx: WakeReceiver) {
        if self
            .poller
            .register(wake_rx.raw_fd(), WAKE_TOKEN, Interest::READ)
            .is_err()
        {
            return;
        }
        let mut events: Vec<Event> = Vec::new();
        let idle = self.shared.idle_poll;
        loop {
            if self.poller.wait(&mut events, Some(idle)).is_err() {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            // Pushed NOTIFY deposits go out before any frame handled
            // this iteration — see [`Mailbox`] for why that order is
            // what keeps cross-connection subscribers coherent.
            self.drain_mailbox();
            for ev in &events {
                if ev.token == WAKE_TOKEN {
                    wake_rx.drain();
                    continue;
                }
                self.conn_ready(ev.token as usize, *ev);
            }
            // Adopt after event processing so a token freed this
            // iteration is not reused while its events are in flight.
            for stream in conn_rx.try_iter() {
                self.adopt(stream);
            }
        }
        for idx in 0..self.conns.len() {
            if self.conns[idx].is_some() {
                self.close(idx);
            }
        }
    }

    fn adopt(&mut self, stream: TcpStream) {
        let id = self.next_conn_id;
        self.next_conn_id += 1;
        let conn = Conn {
            stream,
            id,
            in_buf: Vec::new(),
            in_len: 0,
            parsed: 0,
            out: Vec::new(),
            out_at: 0,
            push_ends: VecDeque::new(),
            subs: [0, 0],
            want_read: true,
            want_write: false,
            close_after_flush: false,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.conns[i] = Some(conn);
                i
            }
            None => {
                self.conns.push(Some(conn));
                self.conns.len() - 1
            }
        };
        let fd = self.conns[idx]
            .as_ref()
            .expect("just adopted")
            .stream
            .as_raw_fd();
        if self
            .poller
            .register(fd, idx as u64, Interest::READ)
            .is_err()
        {
            self.conns[idx] = None;
            self.free.push(idx);
            self.shared.connections.fetch_sub(1, Ordering::SeqCst);
        }
    }

    fn close(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].take() else {
            return;
        };
        let undelivered = conn
            .push_ends
            .iter()
            .filter(|&&end| end > conn.out_at)
            .count() as u64;
        if undelivered > 0 {
            self.shared
                .dropped_pushes
                .fetch_add(undelivered, Ordering::Relaxed);
        }
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        self.shared.connections.fetch_sub(1, Ordering::SeqCst);
        self.free.push(idx);
        if conn.subs[0] > 0 || conn.subs[1] > 0 {
            self.cleanup_subs(conn.id);
        }
    }

    /// Unsubscribes every standing query a departed connection owned,
    /// on every node.
    fn cleanup_subs(&mut self, conn_id: u64) {
        let mut wp = self
            .shared
            .write_plane
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let wp = &mut *wp;
        let dead: Vec<u64> = wp
            .subs
            .iter()
            .filter(|(_, e)| e.owner_loop == self.loop_idx && e.owner_conn == conn_id)
            .map(|(&k, _)| k)
            .collect();
        for rsub in dead {
            let entry = wp.subs.remove(&rsub).expect("listed above");
            let tag = cat_of(entry.target) as u8;
            for (i, &sid) in entry.node_ids.iter().enumerate() {
                wp.by_node.remove(&(i, tag, sid));
                let _ = wp.clients[i].unsubscribe(entry.target, sid);
            }
        }
    }

    fn conn_ready(&mut self, idx: usize, ev: Event) {
        if self.conns.get(idx).is_none_or(Option::is_none) {
            return;
        }
        let result = (|| -> Result<(), Close> {
            if ev.hangup && !ev.readable {
                return Err(Close::Gone);
            }
            if ev.readable {
                self.read_and_serve(idx)?;
            }
            self.flush(idx)?;
            self.settle(idx)
        })();
        if result.is_err() {
            self.close(idx);
        }
    }

    fn read_and_serve(&mut self, idx: usize) -> Result<(), Close> {
        loop {
            let conn = self.conns[idx].as_mut().expect("live conn");
            if conn.close_after_flush {
                return Ok(());
            }
            if conn.pending_out() > self.shared.push_backlog {
                return Ok(()); // flow control: stop reading until drained
            }
            if conn.parsed > 0 {
                conn.in_buf.copy_within(conn.parsed..conn.in_len, 0);
                conn.in_len -= conn.parsed;
                conn.parsed = 0;
            }
            let needed = if conn.in_len >= 4 {
                let len_bytes: [u8; 4] = conn.in_buf[0..4].try_into().expect("4 bytes");
                let len = u32::from_le_bytes(len_bytes).min(self.shared.max_frame_len) as usize;
                (len + 4).saturating_sub(conn.in_len).max(READ_CHUNK)
            } else {
                READ_CHUNK
            };
            if conn.in_buf.len() < conn.in_len + needed {
                conn.in_buf.resize(conn.in_len + needed, 0);
            }
            let at = conn.in_len;
            match conn.stream.read(&mut conn.in_buf[at..]) {
                Ok(0) => {
                    conn.close_after_flush = true;
                    return Ok(());
                }
                Ok(n) => {
                    conn.in_len += n;
                    self.serve_parsed(idx);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return Err(Close::Gone),
            }
        }
    }

    fn serve_parsed(&mut self, idx: usize) {
        loop {
            let conn = self.conns[idx].as_mut().expect("live conn");
            if conn.close_after_flush {
                return;
            }
            let avail = conn.in_len - conn.parsed;
            if avail < 4 {
                return;
            }
            let len_bytes: [u8; 4] = conn.in_buf[conn.parsed..conn.parsed + 4]
                .try_into()
                .expect("4 bytes");
            let len = u32::from_le_bytes(len_bytes);
            if len < 2 || len > self.shared.max_frame_len {
                protocol::encode_error(
                    &mut conn.out,
                    ErrorCode::TooLarge,
                    "frame length out of bounds",
                );
                conn.close_after_flush = true;
                return;
            }
            if avail - 4 < len as usize {
                return; // tail still en route
            }
            let frame_end = conn.parsed + 4 + len as usize;
            // Copy the whole frame — length prefix included — into the
            // loop's scratch: forwarded upstream verbatim, and it
            // frees the connection's buffers for re-borrowing.
            let mut frame = std::mem::take(&mut self.frame);
            frame.clear();
            frame.extend_from_slice(&conn.in_buf[conn.parsed..frame_end]);
            conn.parsed = frame_end;
            self.shared.requests_served.fetch_add(1, Ordering::Relaxed);
            self.serve_frame(idx, &frame);
            self.frame = frame;
        }
    }

    fn serve_frame(&mut self, idx: usize, frame: &[u8]) {
        let version = frame[4];
        let op = frame[5];
        if op == opcode::HELLO {
            let mut out = self.take_out(idx);
            let close = self.handle_hello(&mut out, frame);
            self.put_out(idx, out, close);
            return;
        }
        if version != PROTOCOL_VERSION {
            let conn = self.conns[idx].as_mut().expect("live conn");
            protocol::encode_error(
                &mut conn.out,
                ErrorCode::BadVersion,
                "protocol version mismatch",
            );
            conn.close_after_flush = true;
            return;
        }
        let mut out = self.take_out(idx);
        let panicked = {
            let this = &mut *self;
            let out = &mut out;
            std::panic::catch_unwind(AssertUnwindSafe(|| {
                let payload = &frame[6..];
                match op {
                    opcode::POINT_QUERY => this.scatter_query(out, frame, 0),
                    opcode::UNCERTAIN_QUERY => this.scatter_query(out, frame, 1),
                    opcode::UPDATE_BATCH => this.handle_updates(out, payload),
                    opcode::COMMIT => this.handle_commit(out, payload),
                    opcode::STATS => this.handle_stats(out),
                    opcode::PING => protocol::encode_empty(out, opcode::PONG),
                    opcode::SUBSCRIBE => this.handle_subscribe(out, frame, idx),
                    opcode::UNSUBSCRIBE => this.handle_unsubscribe(out, payload, idx),
                    opcode::TICK => this.handle_tick(out, payload, idx),
                    _ => {
                        protocol::encode_error(out, ErrorCode::BadOpcode, "unknown request opcode")
                    }
                }
            }))
            .is_err()
        };
        if panicked {
            // Router state may be torn mid-operation: fail safe by
            // poisoning both catalogs rather than serving from it.
            self.shared.poison[0].store(true, Ordering::SeqCst);
            self.shared.poison[1].store(true, Ordering::SeqCst);
            protocol::encode_error(&mut out, ErrorCode::Internal, "router handler panicked");
            self.put_out(idx, out, true);
            return;
        }
        self.put_out(idx, out, false);
    }

    fn take_out(&mut self, idx: usize) -> Vec<u8> {
        std::mem::take(&mut self.conns[idx].as_mut().expect("live conn").out)
    }

    fn put_out(&mut self, idx: usize, out: Vec<u8>, close: bool) {
        let conn = self.conns[idx].as_mut().expect("live conn");
        conn.out = out;
        if close {
            conn.close_after_flush = true;
        }
    }

    fn handle_hello(&self, out: &mut Vec<u8>, frame: &[u8]) -> bool {
        let version = frame[4];
        let payload = &frame[6..];
        let peer = protocol::hello_peer_version(payload).unwrap_or(version);
        if version != PROTOCOL_VERSION || peer != PROTOCOL_VERSION {
            protocol::encode_error(
                out,
                ErrorCode::BadVersion,
                &format!(
                    "unsupported protocol version {peer}; this router speaks v{PROTOCOL_VERSION}"
                ),
            );
            return true;
        }
        match protocol::decode_hello(payload) {
            Ok((_, _role, _flags)) => {
                let ack = HelloAck {
                    role: Role::Router,
                    flags: 0,
                    point_epoch: self.shared.epochs[0].load(Ordering::SeqCst),
                    uncertain_epoch: self.shared.epochs[1].load(Ordering::SeqCst),
                    point_recovered: 0,
                    uncertain_recovered: 0,
                    point_shards: self.shared.shard_totals.0,
                    uncertain_shards: self.shared.shard_totals.1,
                };
                protocol::encode_hello_ack(out, &ack);
            }
            Err(e) => wire_error(out, e),
        }
        false
    }

    /// The hot path: scatter the frame to every node in one pipelined
    /// burst, gather the answers, merge. Allocation-free once warm —
    /// error arms are the only place a `format!` lives.
    fn scatter_query(&mut self, out: &mut Vec<u8>, frame: &[u8], cat: usize) {
        if self.shared.poison[cat].load(Ordering::SeqCst) {
            encode_poisoned(out);
            return;
        }
        let gate = self
            .shared
            .commit_gate
            .read()
            .unwrap_or_else(|e| e.into_inner());
        let mut sent = 0usize;
        let mut failed: Option<(ErrorCode, String)> = None;
        for (i, client) in self.upstream.iter_mut().enumerate() {
            self.shared.nodes[i].routed.fetch_add(1, Ordering::Relaxed);
            match client.send_raw(frame) {
                Ok(()) => sent += 1,
                Err(e) => {
                    self.shared.nodes[i]
                        .connected
                        .store(false, Ordering::SeqCst);
                    failed = Some((ErrorCode::Unavailable, format!("node {i} unreachable: {e}")));
                    break;
                }
            }
        }
        // Every node that got the frame must be read — even after a
        // failure — or its queued answer would desynchronize the next
        // request on that upstream connection.
        for i in 0..sent {
            let client = &mut self.upstream[i];
            match client.recv_answer_into(&mut self.partials[i]) {
                Ok(()) => {
                    self.shared.nodes[i].merged.fetch_add(1, Ordering::Relaxed);
                }
                Err(ClientError::Server { code, message, .. }) => {
                    // The node rejected the frame (every node decodes
                    // identically, so all report the same complaint);
                    // forward the first verbatim.
                    self.partials[i].results.clear();
                    if failed.is_none() {
                        failed = Some((code.unwrap_or(ErrorCode::Internal), message));
                    }
                }
                Err(e) => {
                    self.partials[i].results.clear();
                    self.shared.nodes[i]
                        .connected
                        .store(false, Ordering::SeqCst);
                    if failed.is_none() {
                        failed = Some((
                            ErrorCode::Unavailable,
                            format!("node {i} failed mid-query: {e}"),
                        ));
                    }
                }
            }
        }
        drop(gate);
        if let Some((code, message)) = failed {
            protocol::encode_error(out, code, &message);
            return;
        }
        merge_partials_into(
            &mut self.merged,
            self.partials.iter().map(|a| a.results.as_slice()),
        );
        protocol::encode_answer(out, &self.merged);
    }

    fn handle_updates(&mut self, out: &mut Vec<u8>, payload: &[u8]) {
        let mut wp = self
            .shared
            .write_plane
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let wp = &mut *wp;
        wp.updates.clear();
        if let Err(e) = protocol::decode_update_batch(payload, &mut wp.updates) {
            wire_error(out, e);
            return;
        }
        let mut touched = [false, false];
        for u in &wp.updates {
            touched[catalog_of(u)] = true;
        }
        if (touched[0] && self.shared.poison[0].load(Ordering::SeqCst))
            || (touched[1] && self.shared.poison[1].load(Ordering::SeqCst))
        {
            encode_poisoned(out);
            return;
        }
        let n = wp.clients.len();
        for batch in wp.node_batches.iter_mut() {
            batch.clear();
        }
        for u in wp.updates.drain(..) {
            let node = shard_of(update_id(&u), n);
            wp.node_batches[node].push(u);
        }
        let mut accepted: u64 = 0;
        let mut fail: Option<String> = None;
        for i in 0..n {
            if wp.node_batches[i].is_empty() {
                continue;
            }
            self.shared.nodes[i].routed.fetch_add(1, Ordering::Relaxed);
            match wp.clients[i].submit(&wp.node_batches[i]) {
                Ok(a) => {
                    accepted += a as u64;
                    self.shared.nodes[i].merged.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => {
                    if !matches!(e, ClientError::Server { .. }) {
                        self.shared.nodes[i]
                            .connected
                            .store(false, Ordering::SeqCst);
                    }
                    fail = Some(format!("routing updates to node {i} failed: {e}"));
                    break;
                }
            }
        }
        if let Some(message) = fail {
            // Part of the batch may already be buffered on other
            // nodes: the cluster's pending state is torn.
            for (cat, &hit) in touched.iter().enumerate() {
                if hit {
                    self.shared.poison[cat].store(true, Ordering::SeqCst);
                }
            }
            protocol::encode_error(out, ErrorCode::Unavailable, &message);
            return;
        }
        for (cat, &hit) in touched.iter().enumerate() {
            if hit {
                wp.routed[cat] = true;
            }
        }
        protocol::encode_update_ack(out, accepted as u32);
    }

    fn handle_commit(&mut self, out: &mut Vec<u8>, payload: &[u8]) {
        let target = match protocol::decode_commit(payload) {
            Ok(t) => t,
            Err(e) => {
                wire_error(out, e);
                return;
            }
        };
        let cat = cat_of(target);
        let mut wp = self
            .shared
            .write_plane
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let wp = &mut *wp;
        let _gate = self
            .shared
            .commit_gate
            .write()
            .unwrap_or_else(|e| e.into_inner());
        if self.shared.poison[cat].load(Ordering::SeqCst) {
            encode_poisoned(out);
            return;
        }
        if !wp.routed[cat] {
            // Cluster-level empty commit: mirror the sharded engine's
            // early-out — current epoch, empty report, no node traffic.
            let report = CommitReport {
                epoch: self.shared.epochs[cat].load(Ordering::SeqCst),
                ..Default::default()
            };
            protocol::encode_commit_done(out, &report);
            return;
        }
        let n = wp.clients.len();
        wp.reports.clear();
        let mut fail: Option<String> = None;
        for i in 0..n {
            self.shared.nodes[i].routed.fetch_add(1, Ordering::Relaxed);
            match wp.clients[i].commit(target) {
                Ok(report) => {
                    self.shared.nodes[i].merged.fetch_add(1, Ordering::Relaxed);
                    match target {
                        CommitTarget::Point => self.shared.nodes[i]
                            .point_epoch
                            .store(report.epoch, Ordering::Relaxed),
                        CommitTarget::Uncertain => self.shared.nodes[i]
                            .uncertain_epoch
                            .store(report.epoch, Ordering::Relaxed),
                    }
                    wp.reports.push(report);
                }
                Err(e) => {
                    if !matches!(e, ClientError::Server { .. }) {
                        self.shared.nodes[i]
                            .connected
                            .store(false, Ordering::SeqCst);
                    }
                    fail = Some(format!("commit on node {i} failed: {e}"));
                    break;
                }
            }
        }
        if let Some(message) = fail {
            // Some nodes committed, some did not: the epoch is torn.
            // Poison the catalog so the tear is never observable.
            self.shared.poison[cat].store(true, Ordering::SeqCst);
            protocol::encode_error(out, ErrorCode::Unavailable, &message);
            return;
        }
        let epoch = self.shared.epochs[cat].fetch_add(1, Ordering::SeqCst) + 1;
        wp.routed[cat] = false;
        let mut merged = CommitReport {
            epoch,
            ..Default::default()
        };
        for (i, report) in wp.reports.iter().enumerate() {
            merged.arrivals += report.arrivals;
            merged.departures += report.departures;
            merged.moves += report.moves;
            merged.missed_departures += report.missed_departures;
            if let Some(dirty) = report.dirty {
                merged.dirty = Some(match merged.dirty {
                    None => dirty,
                    Some(d) => d.hull(dirty),
                });
            }
            let shards = match target {
                CommitTarget::Point => self.shared.node_shards[i].0,
                CommitTarget::Uncertain => self.shared.node_shards[i].1,
            } as usize;
            if report.per_shard.is_empty() {
                // The node had nothing pending (its commit early-outed)
                // — its shards applied zero updates.
                merged.per_shard.extend(std::iter::repeat_n(0, shards));
            } else {
                merged.per_shard.extend_from_slice(&report.per_shard);
            }
        }
        if wp.subs.values().any(|e| e.target == target) {
            if let Some(message) = gather_deltas(wp, &self.shared, target, epoch) {
                // The commit applied everywhere, but subscriber deltas
                // can no longer be collected coherently — poisoning
                // beats silently dropping a delta from the stream.
                self.shared.poison[cat].store(true, Ordering::SeqCst);
                protocol::encode_error(out, ErrorCode::Unavailable, &message);
                return;
            }
        }
        protocol::encode_commit_done(out, &merged);
    }

    fn handle_subscribe(&mut self, out: &mut Vec<u8>, frame: &[u8], idx: usize) {
        let payload = &frame[6..];
        let mut r = protocol::Reader::new(payload);
        let (target, _slack) = match protocol::decode_subscribe_header(&mut r) {
            Ok(header) => header,
            Err(e) => {
                wire_error(out, e);
                return;
            }
        };
        let cat = cat_of(target);
        if self.shared.poison[cat].load(Ordering::SeqCst) {
            encode_poisoned(out);
            return;
        }
        let conn = self.conns[idx].as_ref().expect("live conn");
        if conn.subs[cat] as usize >= MAX_SUBSCRIPTIONS {
            protocol::encode_error(
                out,
                ErrorCode::TooManySubscriptions,
                "subscription limit reached",
            );
            return;
        }
        let (owner_loop, owner_conn) = (self.loop_idx, conn.id);
        let mut wp = self
            .shared
            .write_plane
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let wp = &mut *wp;
        let n = wp.clients.len();
        wp.sub_merged.results.clear();
        wp.sub_merged.stats = Default::default();
        let mut acks: Vec<u64> = Vec::with_capacity(n);
        let mut fail: Option<(ErrorCode, String)> = None;
        for i in 0..n {
            self.shared.nodes[i].routed.fetch_add(1, Ordering::Relaxed);
            match wp.clients[i].forward_subscribe_into(frame, &mut wp.sub_partial) {
                Ok((ack_target, node_sub, _epoch, _recovered)) => {
                    debug_assert_eq!(ack_target, target);
                    self.shared.nodes[i].merged.fetch_add(1, Ordering::Relaxed);
                    wp.sub_merged
                        .results
                        .extend_from_slice(&wp.sub_partial.results);
                    acks.push(node_sub);
                }
                Err(e) => {
                    let code = match &e {
                        ClientError::Server { code, .. } => code.unwrap_or(ErrorCode::Internal),
                        _ => {
                            self.shared.nodes[i]
                                .connected
                                .store(false, Ordering::SeqCst);
                            ErrorCode::Unavailable
                        }
                    };
                    fail = Some((code, format!("subscribe on node {i} failed: {e}")));
                    break;
                }
            }
        }
        if let Some((code, message)) = fail {
            // Roll back the nodes that did accept, so a failed
            // subscribe leaves no orphan standing queries.
            for (j, &sid) in acks.iter().enumerate() {
                let _ = wp.clients[j].unsubscribe(target, sid);
            }
            protocol::encode_error(out, code, &message);
            return;
        }
        sort_matches(&mut wp.sub_merged.results);
        let rsub = wp.next_sub_id;
        wp.next_sub_id += 1;
        let tag = cat as u8;
        for (i, &sid) in acks.iter().enumerate() {
            wp.by_node.insert((i, tag, sid), rsub);
        }
        wp.subs.insert(
            rsub,
            SubEntry {
                target,
                node_ids: acks,
                owner_loop,
                owner_conn,
            },
        );
        let epoch = self.shared.epochs[cat].load(Ordering::SeqCst);
        protocol::encode_sub_ack(out, target, rsub, epoch, 0, &wp.sub_merged.results);
        self.conns[idx].as_mut().expect("live conn").subs[cat] += 1;
    }

    fn handle_unsubscribe(&mut self, out: &mut Vec<u8>, payload: &[u8], idx: usize) {
        let (target, rsub) = match protocol::decode_unsubscribe(payload) {
            Ok(req) => req,
            Err(e) => {
                wire_error(out, e);
                return;
            }
        };
        let cat = cat_of(target);
        let conn_id = self.conns[idx].as_ref().expect("live conn").id;
        let mut wp = self
            .shared
            .write_plane
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let wp = &mut *wp;
        let known = wp.subs.get(&rsub).is_some_and(|e| {
            e.target == target && e.owner_loop == self.loop_idx && e.owner_conn == conn_id
        });
        if !known {
            protocol::encode_unsub_done(out, false);
            return;
        }
        let entry = wp.subs.remove(&rsub).expect("checked above");
        let tag = cat as u8;
        for (i, &sid) in entry.node_ids.iter().enumerate() {
            wp.by_node.remove(&(i, tag, sid));
            self.shared.nodes[i].routed.fetch_add(1, Ordering::Relaxed);
            match wp.clients[i].unsubscribe(target, sid) {
                Ok(_) => {
                    self.shared.nodes[i].merged.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => {
                    if !matches!(e, ClientError::Server { .. }) {
                        self.shared.nodes[i]
                            .connected
                            .store(false, Ordering::SeqCst);
                    }
                }
            }
        }
        protocol::encode_unsub_done(out, true);
        let conn = self.conns[idx].as_mut().expect("live conn");
        conn.subs[cat] = conn.subs[cat].saturating_sub(1);
    }

    fn handle_tick(&mut self, out: &mut Vec<u8>, payload: &[u8], idx: usize) {
        let (target, rsub, pdf) = match protocol::decode_tick(payload) {
            Ok(req) => req,
            Err(e) => {
                wire_error(out, e);
                return;
            }
        };
        let cat = cat_of(target);
        if self.shared.poison[cat].load(Ordering::SeqCst) {
            encode_poisoned(out);
            return;
        }
        let conn_id = self.conns[idx].as_ref().expect("live conn").id;
        let mut wp = self
            .shared
            .write_plane
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let wp = &mut *wp;
        let known = wp.subs.get(&rsub).is_some_and(|e| {
            e.target == target && e.owner_loop == self.loop_idx && e.owner_conn == conn_id
        });
        if !known {
            wire_error(out, WireError::Malformed("unknown subscription id"));
            return;
        }
        wp.tick_delta.upserts.clear();
        wp.tick_delta.removals.clear();
        let n = wp.clients.len();
        let mut fail: Option<(ErrorCode, String)> = None;
        for i in 0..n {
            let sid = wp.subs[&rsub].node_ids[i];
            self.shared.nodes[i].routed.fetch_add(1, Ordering::Relaxed);
            match wp.clients[i].tick_into(target, sid, &pdf, &mut wp.note) {
                Ok(()) => {
                    self.shared.nodes[i].merged.fetch_add(1, Ordering::Relaxed);
                    wp.tick_delta
                        .upserts
                        .extend_from_slice(&wp.note.delta.upserts);
                    wp.tick_delta
                        .removals
                        .extend_from_slice(&wp.note.delta.removals);
                }
                Err(e) => {
                    let code = match &e {
                        ClientError::Server { code, .. } => code.unwrap_or(ErrorCode::Internal),
                        _ => {
                            self.shared.nodes[i]
                                .connected
                                .store(false, Ordering::SeqCst);
                            ErrorCode::Unavailable
                        }
                    };
                    fail = Some((code, format!("tick on node {i} failed: {e}")));
                    break;
                }
            }
        }
        if let Some((code, message)) = fail {
            // A partial tick leaves node-side issuer positions torn
            // for this one subscription; the owner should resubscribe.
            protocol::encode_error(out, code, &message);
            return;
        }
        sort_matches(&mut wp.tick_delta.upserts);
        wp.tick_delta.removals.sort_unstable();
        let epoch = self.shared.epochs[cat].load(Ordering::SeqCst);
        protocol::encode_notify(out, target, rsub, epoch, NotifyCause::Tick, &wp.tick_delta);
    }

    fn handle_stats(&mut self, out: &mut Vec<u8>) {
        // Read the counter before doing any work, so the response
        // excludes allocations this very probe performs afterwards.
        let allocations = alloc_count::allocations();
        let _gate = self
            .shared
            .commit_gate
            .read()
            .unwrap_or_else(|e| e.into_inner());
        let m = &mut self.merged_stats;
        m.alloc_counting = alloc_count::counting_installed();
        m.allocations = allocations;
        m.requests_served = self.shared.requests_served.load(Ordering::Relaxed);
        m.capacity = self.shared.capacity as u32;
        m.event_loops = self.shared.event_loops;
        m.connections = self.shared.connections.load(Ordering::SeqCst);
        m.dropped_pushes = self.shared.dropped_pushes.load(Ordering::Relaxed);
        m.point.epoch = self.shared.epochs[0].load(Ordering::SeqCst);
        m.point.len = 0;
        m.point.pending = 0;
        m.point.shard_sizes.clear();
        m.uncertain.epoch = self.shared.epochs[1].load(Ordering::SeqCst);
        m.uncertain.len = 0;
        m.uncertain.pending = 0;
        m.uncertain.shard_sizes.clear();
        m.filter_nanos = 0;
        m.prune_nanos = 0;
        m.refine_nanos = 0;
        m.refine_batches.fill(0);
        m.nodes.clear();
        for i in 0..self.upstream.len() {
            self.shared.nodes[i].routed.fetch_add(1, Ordering::Relaxed);
            match self.upstream[i].stats_into(&mut self.node_stats[i]) {
                Ok(()) => {
                    self.shared.nodes[i].merged.fetch_add(1, Ordering::Relaxed);
                    let ns = &self.node_stats[i];
                    self.shared.nodes[i]
                        .point_epoch
                        .store(ns.point.epoch, Ordering::Relaxed);
                    self.shared.nodes[i]
                        .uncertain_epoch
                        .store(ns.uncertain.epoch, Ordering::Relaxed);
                    m.point.len += ns.point.len;
                    m.point.pending += ns.point.pending;
                    m.point.shard_sizes.extend_from_slice(&ns.point.shard_sizes);
                    m.uncertain.len += ns.uncertain.len;
                    m.uncertain.pending += ns.uncertain.pending;
                    m.uncertain
                        .shard_sizes
                        .extend_from_slice(&ns.uncertain.shard_sizes);
                    m.filter_nanos += ns.filter_nanos;
                    m.prune_nanos += ns.prune_nanos;
                    m.refine_nanos += ns.refine_nanos;
                    for (acc, v) in m.refine_batches.iter_mut().zip(ns.refine_batches.iter()) {
                        *acc += v;
                    }
                }
                Err(_) => {
                    self.shared.nodes[i]
                        .connected
                        .store(false, Ordering::SeqCst);
                }
            }
            m.nodes.push(NodeHealth {
                connected: self.shared.nodes[i].connected.load(Ordering::SeqCst),
                point_epoch: self.shared.nodes[i].point_epoch.load(Ordering::Relaxed),
                uncertain_epoch: self.shared.nodes[i].uncertain_epoch.load(Ordering::Relaxed),
                routed: self.shared.nodes[i].routed.load(Ordering::Relaxed),
                merged: self.shared.nodes[i].merged.load(Ordering::Relaxed),
            });
        }
        protocol::encode_stats_report_from(out, m);
    }

    /// Delivers deposited NOTIFY frames to the connections of this
    /// loop. A deposit whose connection is gone counts as a dropped
    /// push, matching the server's accounting.
    fn drain_mailbox(&mut self) {
        {
            let mut deposits = self.shared.mailboxes[self.loop_idx]
                .deposits
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            if deposits.is_empty() {
                return;
            }
            std::mem::swap(&mut *deposits, &mut self.deposits_scratch);
        }
        let mut deposits = std::mem::take(&mut self.deposits_scratch);
        for (conn_id, frame) in deposits.drain(..) {
            let found = self
                .conns
                .iter()
                .position(|c| c.as_ref().is_some_and(|c| c.id == conn_id));
            let Some(idx) = found else {
                self.shared.dropped_pushes.fetch_add(1, Ordering::Relaxed);
                continue;
            };
            let conn = self.conns[idx].as_mut().expect("found above");
            if conn.close_after_flush {
                self.shared.dropped_pushes.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            conn.out.extend_from_slice(&frame);
            conn.push_ends.push_back(conn.out.len());
            if conn.pending_out() > self.shared.push_backlog {
                self.close(idx); // push backpressure overflow
                continue;
            }
            if self.flush(idx).is_err() || self.settle(idx).is_err() {
                self.close(idx);
            }
        }
        self.deposits_scratch = deposits;
    }

    fn flush(&mut self, idx: usize) -> Result<(), Close> {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return Ok(());
        };
        while conn.out_at < conn.out.len() {
            match conn.stream.write(&conn.out[conn.out_at..]) {
                Ok(0) => return Err(Close::Gone),
                Ok(n) => conn.out_at += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return Err(Close::Gone),
            }
        }
        if conn.out_at == conn.out.len() {
            conn.out.clear();
            conn.out_at = 0;
            conn.push_ends.clear();
        } else {
            while conn
                .push_ends
                .front()
                .is_some_and(|&end| end <= conn.out_at)
            {
                conn.push_ends.pop_front();
            }
        }
        Ok(())
    }

    fn settle(&mut self, idx: usize) -> Result<(), Close> {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return Ok(());
        };
        let pending = conn.pending_out();
        if conn.close_after_flush && pending == 0 {
            return Err(Close::Gone);
        }
        let want_read = !conn.close_after_flush && pending <= self.shared.push_backlog;
        let want_write = pending > 0;
        if want_read != conn.want_read || want_write != conn.want_write {
            let interest = Interest {
                readable: want_read,
                writable: want_write,
            };
            if self
                .poller
                .modify(conn.stream.as_raw_fd(), idx as u64, interest)
                .is_err()
            {
                return Err(Close::Gone);
            }
            conn.want_read = want_read;
            conn.want_write = want_write;
        }
        Ok(())
    }
}

/// Collects the commit's pushed deltas from every node behind a PING
/// barrier, merges them per router subscription (disjoint id
/// partitions: concatenate, sort), stamps the cluster epoch, and
/// deposits one NOTIFY per touched subscription into the owner loop's
/// mailbox — all *before* the caller writes its COMMIT_DONE, so a
/// subscriber never observes an acknowledged commit without its delta
/// en route. Returns an error message if a node could not be drained.
fn gather_deltas(
    wp: &mut WritePlane,
    shared: &Shared,
    target: CommitTarget,
    epoch: u64,
) -> Option<String> {
    let n = wp.clients.len();
    for i in 0..n {
        // The server flushes commit NOTIFYs before answering a PING,
        // so after the pong every push is queued client-side.
        if let Err(e) = wp.clients[i].ping() {
            shared.nodes[i].connected.store(false, Ordering::SeqCst);
            return Some(format!("collecting deltas from node {i} failed: {e}"));
        }
    }
    wp.deltas.clear();
    let tag = cat_of(target) as u8;
    for i in 0..n {
        while let Some(note) = wp.clients[i].take_notification() {
            if note.cause != NotifyCause::Commit || note.target != target {
                continue;
            }
            let Some(&rsub) = wp.by_node.get(&(i, tag, note.sub_id)) else {
                continue;
            };
            let slot = wp.deltas.entry(rsub).or_default();
            slot.upserts.extend_from_slice(&note.delta.upserts);
            slot.removals.extend_from_slice(&note.delta.removals);
        }
    }
    // Deterministic delivery order across subscriptions.
    let mut touched: Vec<u64> = wp.deltas.keys().copied().collect();
    touched.sort_unstable();
    for rsub in touched {
        let mut delta = wp.deltas.remove(&rsub).expect("key listed");
        sort_matches(&mut delta.upserts);
        delta.removals.sort_unstable();
        let entry = &wp.subs[&rsub];
        let mut push = Vec::new();
        protocol::encode_notify(
            &mut push,
            entry.target,
            rsub,
            epoch,
            NotifyCause::Commit,
            &delta,
        );
        shared.deposit(entry.owner_loop, entry.owner_conn, push);
    }
    None
}

fn cat_of(target: CommitTarget) -> usize {
    match target {
        CommitTarget::Point => 0,
        CommitTarget::Uncertain => 1,
    }
}

fn catalog_of(update: &WireUpdate) -> usize {
    match update {
        WireUpdate::Point(_) => 0,
        WireUpdate::Uncertain(_) => 1,
    }
}

/// The id that decides which node owns an update — the same id the
/// sharded engine hashes, so node order is shard order.
fn update_id(update: &WireUpdate) -> ObjectId {
    match update {
        WireUpdate::Point(Update::Arrive(o)) | WireUpdate::Point(Update::Move(o)) => o.id,
        WireUpdate::Point(Update::Depart(id)) => *id,
        WireUpdate::Uncertain(Update::Arrive(o)) | WireUpdate::Uncertain(Update::Move(o)) => o.id,
        WireUpdate::Uncertain(Update::Depart(id)) => *id,
    }
}

fn encode_poisoned(out: &mut Vec<u8>) {
    protocol::encode_error(
        out,
        ErrorCode::Unavailable,
        "catalog poisoned by a failed cluster operation; restart the router",
    );
}

fn wire_error(buf: &mut Vec<u8>, e: WireError) {
    let message = match e {
        WireError::Malformed(what) => what,
        WireError::UnsupportedPdf => "pdf kind not encodable on the wire",
    };
    protocol::encode_error(buf, e.into(), message);
}
