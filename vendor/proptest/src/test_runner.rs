//! Case execution.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-property configuration (`proptest::test_runner::Config`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` premise failed — draw another case.
    Reject,
    /// An assertion failed — the property is falsified.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// FNV-1a, used to give every property its own deterministic stream.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

/// Runs one property to completion: `config.cases` accepted cases
/// within a generous global reject budget, and a panic carrying the
/// first failure. Exhausting the budget before reaching the accepted
/// count is an error (matching real proptest's too-many-global-rejects
/// behaviour) — a property must never silently pass under-tested.
/// Deterministic per property name.
pub fn run_cases(
    config: &ProptestConfig,
    name: &str,
    case: &mut dyn FnMut(&mut StdRng) -> Result<(), TestCaseError>,
) {
    let mut rng = StdRng::seed_from_u64(fnv1a(name));
    let budget = (config.cases as u64).saturating_mul(256).max(4096);
    let mut accepted: u64 = 0;
    let mut attempts: u64 = 0;
    while accepted < config.cases as u64 && attempts < budget {
        attempts += 1;
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed at case {accepted} (attempt {attempts}): {msg}")
            }
        }
    }
    assert!(
        accepted >= config.cases as u64,
        "property `{name}`: too many prop_assume! rejects — only {accepted} of {} \
         cases accepted in {attempts} attempts; loosen the premise or the strategies",
        config.cases
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_and_counts_cases() {
        let mut n = 0u32;
        run_cases(&ProptestConfig::with_cases(50), "counting", &mut |_rng| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 50);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_panic_with_message() {
        run_cases(&ProptestConfig::default(), "failing", &mut |_rng| {
            Err(TestCaseError::fail("boom".into()))
        });
    }

    #[test]
    #[should_panic(expected = "too many prop_assume! rejects")]
    fn all_rejected_is_an_error() {
        run_cases(&ProptestConfig::with_cases(5), "rejecting", &mut |_rng| {
            Err(TestCaseError::Reject)
        });
    }

    #[test]
    fn partial_acceptance_with_heavy_rejection_passes() {
        let mut flip = false;
        run_cases(
            &ProptestConfig::with_cases(10),
            "alternating",
            &mut |_rng| {
                flip = !flip;
                if flip {
                    Err(TestCaseError::Reject)
                } else {
                    Ok(())
                }
            },
        );
    }
}
