//! Collection strategies (`proptest::collection`).

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Number-of-elements specification for [`vec`]: an exact count or a
/// half-open / inclusive range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of values drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The result of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn exact_and_ranged_sizes() {
        let mut rng = StdRng::seed_from_u64(3);
        let exact = vec(0.0..1.0f64, 12);
        assert_eq!(exact.sample(&mut rng).len(), 12);
        let ranged = vec(0.0..1.0f64, 2..8);
        for _ in 0..100 {
            let n = ranged.sample(&mut rng).len();
            assert!((2..8).contains(&n));
        }
    }
}
