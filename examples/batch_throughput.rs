//! Batched query serving: drain a large queue of imprecise queries
//! through `pipeline::execute_batch` (rayon, all cores) and check the
//! answers are bit-identical to sequential execution.
//!
//! ```text
//! cargo run --release --example batch_throughput [-- <num_queries>]
//! ```

use std::time::Instant;

use iloc::core::pipeline::{execute_batch, execute_batch_sequential, PointRequest};
use iloc::datagen::{california_points, WorkloadGen};
use iloc::prelude::*;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(50_000);

    let engine = PointEngine::build(california_points(62_000, 1));
    let mut gen = WorkloadGen::new(7);
    let requests: Vec<PointRequest> = (0..n)
        .map(|_| {
            PointRequest::ipq(
                Issuer::uniform(gen.issuer_region(250.0)),
                RangeSpec::square(500.0),
            )
        })
        .collect();

    let t = Instant::now();
    let sequential = execute_batch_sequential(&engine, &requests);
    let t_seq = t.elapsed();

    let t = Instant::now();
    let parallel = execute_batch(&engine, &requests);
    let t_par = t.elapsed();

    assert_eq!(sequential.len(), parallel.len());
    for (a, b) in sequential.iter().zip(&parallel) {
        assert!(a.same_matches(b), "parallel answers diverged");
    }

    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    println!("{n} IPQ requests over 62k points:");
    println!(
        "  sequential {t_seq:?}  ({:.0} q/s)",
        n as f64 / t_seq.as_secs_f64()
    );
    println!(
        "  parallel   {t_par:?}  ({:.0} q/s, {cores} core(s), {:.1}x)",
        n as f64 / t_par.as_secs_f64(),
        t_seq.as_secs_f64() / t_par.as_secs_f64()
    );
    println!("  answers bit-identical ✓");
}
