//! Property tests for the unified query-execution pipeline:
//!
//! * the **basic** (Section 3.3) and **duality** (Section 4.2)
//!   evaluators plug into the same pipeline and agree within the
//!   integrator's discretisation tolerance on random uniform-pdf
//!   workloads;
//! * [`execute_batch`] (rayon, all cores, one long-lived context per
//!   worker) returns **bit-identical** answers to sequential execution
//!   under the same seed, for random mixed IPQ/C-IPQ/IUQ/C-IUQ request
//!   batches;
//! * a **dirty, reused** `ExecutionContext` — scratch buffers and RNG
//!   state left over from arbitrary earlier queries — yields
//!   bit-identical answers *and* identical deterministic cost counters
//!   to a fresh context, across IPQ, C-IUQ and continuous workloads
//!   (the correctness half of the zero-allocation hot path).

use iloc::core::pipeline::{
    execute_batch, execute_batch_sequential, BatchEngine, ExecutionContext, PointRequest,
    UncertainRequest,
};
use iloc::prelude::*;
use proptest::prelude::*;

/// Strategy: an issuer with a uniform pdf near the middle of a
/// 1000×1000 space.
fn issuer() -> impl Strategy<Value = Issuer> {
    (
        100.0..900.0f64,
        100.0..900.0f64,
        20.0..150.0f64,
        20.0..150.0f64,
    )
        .prop_map(|(x, y, w, h)| Issuer::uniform(Rect::centered(Point::new(x, y), w, h)))
}

/// Strategy: a point database of up to 60 objects.
fn point_db() -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec(
        (0.0..1_000.0f64, 0.0..1_000.0f64).prop_map(|(x, y)| Point::new(x, y)),
        1..60,
    )
}

/// Strategy: an uncertain database of up to 40 uniform-pdf objects.
fn uncertain_db() -> impl Strategy<Value = Vec<UncertainObject>> {
    proptest::collection::vec(
        (0.0..1_000.0f64, 0.0..1_000.0f64, 5.0..60.0f64, 5.0..60.0f64),
        1..40,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(k, (x, y, w, h))| {
                UncertainObject::new(
                    k as u64,
                    UniformPdf::new(Rect::centered(Point::new(x, y), w, h)),
                )
            })
            .collect()
    })
}

fn assert_bit_identical(parallel: &[QueryAnswer], sequential: &[QueryAnswer]) {
    assert_eq!(parallel.len(), sequential.len());
    for (k, (a, b)) in parallel.iter().zip(sequential).enumerate() {
        assert!(a.same_matches(b), "answer {k} diverged: {a:?} vs {b:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The two refine-stage evaluators agree through the whole point
    /// pipeline: every probability the duality evaluator reports is
    /// reproduced by the basic evaluator within the midpoint grid's
    /// tolerance, and the basic evaluator finds no extra objects.
    #[test]
    fn point_pipeline_evaluators_agree(
        pts in point_db(),
        iss in issuer(),
        w in 30.0..250.0f64,
    ) {
        let engine = PointEngine::build(pts);
        let range = RangeSpec::square(w);
        let dual = engine.ipq(&iss, range);
        let basic = engine.ipq_basic(&iss, range, 96);
        // 96² midpoint cells resolve probabilities to well under 0.02.
        for m in &dual.results {
            let got = basic.probability_of(m.id).unwrap_or(0.0);
            prop_assert!(
                (m.probability - got).abs() < 0.02,
                "{}: duality {} vs basic {}", m.id, m.probability, got
            );
        }
        for m in &basic.results {
            prop_assert!(
                dual.probability_of(m.id).is_some(),
                "basic found {} that duality scores zero", m.id
            );
        }
    }

    /// Same agreement for uncertain objects (Eq. 4 vs Lemma 4 / Eq. 8).
    #[test]
    fn uncertain_pipeline_evaluators_agree(
        objs in uncertain_db(),
        iss in issuer(),
        w in 30.0..250.0f64,
    ) {
        let engine = UncertainEngine::build(objs);
        let range = RangeSpec::square(w);
        let dual = engine.iuq(&iss, range);
        let basic = engine.iuq_basic(&iss, range, 72);
        for m in &dual.results {
            if m.probability > 0.02 {
                let got = basic.probability_of(m.id).unwrap_or(0.0);
                prop_assert!(
                    (m.probability - got).abs() < 0.02,
                    "{}: duality {} vs basic {}", m.id, m.probability, got
                );
            }
        }
        for m in &basic.results {
            prop_assert!(
                dual.probability_of(m.id).is_some(),
                "basic found {} that duality scores zero", m.id
            );
        }
    }

    /// Rayon batches of mixed IPQ / C-IPQ requests are bit-identical
    /// to sequential execution.
    #[test]
    fn point_batches_deterministic(
        pts in point_db(),
        issuers in proptest::collection::vec(
            (100.0..900.0f64, 100.0..900.0f64, 20.0..120.0f64), 1..32),
        w in 30.0..250.0f64,
        qp in 0.0..0.9f64,
    ) {
        let engine = PointEngine::build(pts);
        let range = RangeSpec::square(w);
        let requests: Vec<PointRequest> = issuers
            .into_iter()
            .enumerate()
            .map(|(k, (x, y, u))| {
                let iss = Issuer::uniform(Rect::centered(Point::new(x, y), u, u));
                match k % 3 {
                    0 => PointRequest::ipq(iss, range),
                    1 => PointRequest::cipq(iss, range, qp, CipqStrategy::MinkowskiSum),
                    _ => PointRequest::cipq(iss, range, qp, CipqStrategy::PExpanded),
                }
            })
            .collect();
        let par = execute_batch(&engine, &requests);
        let seq = execute_batch_sequential(&engine, &requests);
        assert_bit_identical(&par, &seq);
        // And the engine-level convenience API is the same executor.
        let via_engine = engine.execute_batch(&requests);
        assert_bit_identical(&via_engine, &seq);
    }

    /// Rayon batches of mixed IUQ / C-IUQ requests (both index
    /// strategies, pruning chain included) are bit-identical to
    /// sequential execution.
    #[test]
    fn uncertain_batches_deterministic(
        objs in uncertain_db(),
        issuers in proptest::collection::vec(
            (100.0..900.0f64, 100.0..900.0f64, 20.0..120.0f64), 1..24),
        w in 30.0..250.0f64,
        qp in 0.0..0.9f64,
    ) {
        let engine = UncertainEngine::build(objs);
        let range = RangeSpec::square(w);
        let requests: Vec<UncertainRequest> = issuers
            .into_iter()
            .enumerate()
            .map(|(k, (x, y, u))| {
                let iss = Issuer::uniform(Rect::centered(Point::new(x, y), u, u));
                match k % 3 {
                    0 => UncertainRequest::iuq(iss, range),
                    1 => UncertainRequest::ciuq(iss, range, qp, CiuqStrategy::RTreeMinkowski),
                    _ => UncertainRequest::ciuq(iss, range, qp, CiuqStrategy::PtiPExpanded),
                }
            })
            .collect();
        let par = execute_batch(&engine, &requests);
        let seq = execute_batch_sequential(&engine, &requests);
        assert_bit_identical(&par, &seq);
    }

    /// A context dirtied by arbitrary earlier point queries (warm
    /// scratch buffers, consumed RNG) answers every subsequent request
    /// bit-identically to a fresh context, with identical cost
    /// counters. Monte-Carlo requests are mixed in so RNG reseeding is
    /// exercised, not just the closed-form paths.
    #[test]
    fn dirty_reused_context_matches_fresh_point_queries(
        pts in point_db(),
        issuers in proptest::collection::vec(
            (100.0..900.0f64, 100.0..900.0f64, 20.0..120.0f64), 2..24),
        w in 30.0..250.0f64,
        qp in 0.0..0.9f64,
    ) {
        let engine = PointEngine::build(pts);
        let range = RangeSpec::square(w);
        let requests: Vec<PointRequest> = issuers
            .into_iter()
            .enumerate()
            .map(|(k, (x, y, u))| {
                let iss = Issuer::uniform(Rect::centered(Point::new(x, y), u, u));
                match k % 4 {
                    0 => PointRequest::ipq(iss, range),
                    1 => PointRequest::cipq(iss, range, qp, CipqStrategy::MinkowskiSum),
                    2 => PointRequest::cipq(iss, range, qp, CipqStrategy::PExpanded),
                    _ => PointRequest::ipq(iss, range)
                        .with_integrator(Integrator::MonteCarlo { samples: 64 }),
                }
            })
            .collect();
        // Dirty the context and the reused answer on the whole stream.
        let mut reused_ctx = ExecutionContext::new(Integrator::Auto);
        let mut reused_answer = QueryAnswer::default();
        for request in &requests {
            engine.execute_one_into(request, &mut reused_ctx, &mut reused_answer);
        }
        // Then every request must reproduce the fresh-context result.
        for request in &requests {
            engine.execute_one_into(request, &mut reused_ctx, &mut reused_answer);
            let fresh = engine.execute_one(request);
            prop_assert!(reused_answer.same_matches(&fresh));
            prop_assert!(reused_answer.stats.same_counters(&fresh.stats));
        }
    }

    /// Same guarantee for uncertain queries, covering the PTI filter +
    /// Section-5.2 prune chain (whose per-strategy counters must also
    /// be oblivious to scratch reuse).
    #[test]
    fn dirty_reused_context_matches_fresh_uncertain_queries(
        objs in uncertain_db(),
        issuers in proptest::collection::vec(
            (100.0..900.0f64, 100.0..900.0f64, 20.0..120.0f64), 2..16),
        w in 30.0..250.0f64,
        qp in 0.0..0.9f64,
    ) {
        let engine = UncertainEngine::build(objs);
        let range = RangeSpec::square(w);
        let requests: Vec<UncertainRequest> = issuers
            .into_iter()
            .enumerate()
            .map(|(k, (x, y, u))| {
                let iss = Issuer::uniform(Rect::centered(Point::new(x, y), u, u));
                match k % 3 {
                    0 => UncertainRequest::iuq(iss, range),
                    1 => UncertainRequest::ciuq(iss, range, qp, CiuqStrategy::PtiPExpanded),
                    _ => UncertainRequest::ciuq(iss, range, qp, CiuqStrategy::RTreeMinkowski),
                }
            })
            .collect();
        let mut reused_ctx = ExecutionContext::new(Integrator::Auto);
        let mut reused_answer = QueryAnswer::default();
        for request in &requests {
            engine.execute_one_into(request, &mut reused_ctx, &mut reused_answer);
        }
        for request in &requests {
            engine.execute_one_into(request, &mut reused_ctx, &mut reused_answer);
            let fresh = engine.execute_one(request);
            prop_assert!(reused_answer.same_matches(&fresh));
            prop_assert!(reused_answer.stats.same_counters(&fresh.stats));
        }
    }

    /// A continuous runner (owned context + envelope cache, reused
    /// answer) tracks snapshot evaluation exactly at every tick of a
    /// random walk — the filter swap and the buffer reuse change cost,
    /// never answers.
    #[test]
    fn continuous_steady_state_equals_snapshots(
        pts in point_db(),
        start in (100.0..900.0f64, 100.0..900.0f64),
        steps in proptest::collection::vec((-40.0..40.0f64, -40.0..40.0f64), 1..30),
        u in 20.0..100.0f64,
        w in 30.0..200.0f64,
        slack in 0.0..300.0f64,
    ) {
        let engine = PointEngine::build(pts);
        let range = RangeSpec::square(w);
        let mut runner = ContinuousIpq::new(&engine, range, slack);
        let mut answer = QueryAnswer::default();
        let (mut x, mut y) = start;
        for (dx, dy) in steps {
            x += dx;
            y += dy;
            let issuer = Issuer::uniform(Rect::centered(Point::new(x, y), u, u));
            runner.step_into(&issuer, &mut answer);
            let snapshot = engine.ipq(&issuer, range);
            prop_assert!(answer.same_matches(&snapshot));
        }
    }

    /// Batch answers equal the answers from the one-query engine
    /// methods — batching changes scheduling, never semantics.
    #[test]
    fn batch_equals_single_query_api(
        objs in uncertain_db(),
        iss in issuer(),
        w in 30.0..250.0f64,
        qp in 0.0..0.9f64,
    ) {
        let engine = UncertainEngine::build(objs);
        let range = RangeSpec::square(w);
        let requests = vec![
            UncertainRequest::iuq(iss.clone(), range),
            UncertainRequest::ciuq(iss.clone(), range, qp, CiuqStrategy::PtiPExpanded),
        ];
        let batch = engine.execute_batch(&requests);
        let singles = [
            engine.iuq(&iss, range),
            engine.ciuq(&iss, range, qp, CiuqStrategy::PtiPExpanded),
        ];
        assert_bit_identical(&batch, &singles);
    }
}
