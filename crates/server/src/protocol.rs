//! The wire protocol: versioned, length-prefixed binary frames.
//!
//! Every message — in either direction — is one **frame**:
//!
//! ```text
//! ┌────────────┬───────────┬──────────┬─────────────┐
//! │ len: u32le │ ver: u8   │ op: u8   │ payload …   │
//! └────────────┴───────────┴──────────┴─────────────┘
//!        len = 2 + payload length (covers ver + op + payload)
//! ```
//!
//! All integers are little-endian; `f64`s travel as their IEEE-754 bit
//! patterns (`to_bits`/`from_bits`), so probabilities round-trip
//! **bit-identically** — the loopback tests compare network answers to
//! in-process answers with [`QueryAnswer::same_matches`], the same
//! contract the batch executor is tested against. The full byte-level
//! spec (opcodes, payload layouts, error codes, versioning rules)
//! lives in `docs/PROTOCOL.md`; this module is its executable form.
//!
//! ## Design constraints
//!
//! * **Allocation-free on the query path.** Encoders append to a
//!   caller-owned `Vec<u8>` and decoders overwrite caller-owned
//!   values in place ([`decode_point_query_into`] rebuilds the
//!   issuer's U-catalog through [`Issuer::set_pdf`] without
//!   allocating), so a warm client or server worker touches no heap.
//! * **Malformed input is an error frame, never a panic.** Every
//!   decoder validates geometry (finite coordinates, positive areas,
//!   positive sigmas) before calling a constructor that would assert;
//!   trailing bytes, truncated payloads and out-of-range enums all
//!   surface as [`WireError`]s the server answers with an
//!   [`opcode::ERROR`] frame.
//! * **Versioned.** Byte 4 of every frame carries
//!   [`PROTOCOL_VERSION`]; a mismatch is rejected with
//!   [`ErrorCode::BadVersion`] so incompatible ends fail loudly, not
//!   subtly.

use iloc_core::pipeline::{PointConstraint, PointRequest, UncertainConstraint, UncertainRequest};
use iloc_core::serve::{CommitReport, ServeEngine, Snapshot, Update};
use iloc_core::stats::REFINE_BATCH_BUCKETS;
use iloc_core::subscribe::AnswerDelta;
use iloc_core::{CipqStrategy, CiuqStrategy, Integrator, QueryAnswer, RangeSpec};
use iloc_geometry::{Point, Rect};
use iloc_uncertainty::{
    DiscPdf, LocationPdf, ObjectId, PdfKind, PointObject, TruncatedGaussianPdf, UncertainObject,
    UniformPdf,
};

/// The protocol version this build speaks (frame byte 4). Version 2
/// added the subscription frames (SUBSCRIBE / UNSUBSCRIBE / TICK /
/// SUB_ACK / NOTIFY / UNSUB_DONE) and extended the COMMIT_DONE payload
/// with per-shard applied counts and the merged dirty rectangle.
/// Version 3 extended the STATS_REPORT payload with per-stage pipeline
/// timings (filter / prune / refine nanoseconds) and the refine-batch
/// size histogram.
/// Version 4 extended the SUB_ACK payload with the server's recovered
/// epoch (the engine epoch at process start — non-zero after a crash
/// recovery), so a reconnecting subscriber can detect a restart and
/// re-issue its SUBSCRIBE frames.
/// Version 5 (the event-driven connection core) replaced the
/// STATS_REPORT worker-pool field with the connection **capacity**,
/// and added the event-loop count, the live-connection gauge and the
/// server-wide dropped-push counter (pushes a backpressure close never
/// delivered).
/// Version 6 (cluster serving) added the HELLO / HELLO_ACK handshake
/// (version negotiation plus node-role and epoch/shard introspection,
/// sent by [`Client`](crate::Client) on connect), appended a per-node
/// health section to STATS_REPORT (empty on a plain server, one entry
/// per upstream node on a router), and added
/// [`ErrorCode::Unavailable`] for cluster nodes that cannot be
/// reached.
pub const PROTOCOL_VERSION: u8 = 6;

/// Hard ceiling on one frame's `len` field; larger frames are rejected
/// with [`ErrorCode::TooLarge`] and the connection is closed (a wild
/// length usually means the peer is not speaking this protocol).
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Ceiling on Monte-Carlo samples a request may ask for (a 4-byte
/// sample count would otherwise let one frame buy minutes of CPU).
pub const MAX_MC_SAMPLES: u32 = 1_000_000;

/// Ceiling on grid-integrator cells per axis, for the same reason.
pub const MAX_GRID_PER_AXIS: u32 = 4_096;

/// Frame opcodes (requests `0x01..=0x7F`, responses `0x81..=0xFF`).
pub mod opcode {
    /// IPQ / C-IPQ against the point catalog → [`ANSWER`].
    pub const POINT_QUERY: u8 = 0x01;
    /// IUQ / C-IUQ against the uncertain catalog → [`ANSWER`].
    pub const UNCERTAIN_QUERY: u8 = 0x02;
    /// Batch of arrive/depart/move updates → [`UPDATE_ACK`].
    pub const UPDATE_BATCH: u8 = 0x03;
    /// Commit one catalog's buffered updates → [`COMMIT_DONE`].
    pub const COMMIT: u8 = 0x04;
    /// Server observability probe → [`STATS_REPORT`].
    pub const STATS: u8 = 0x05;
    /// Liveness probe → [`PONG`]. Also the keepalive: any frame resets
    /// the server's idle-connection deadline, and PING is the cheapest.
    pub const PING: u8 = 0x06;
    /// Register a standing continuous query → [`SUB_ACK`].
    pub const SUBSCRIBE: u8 = 0x07;
    /// Drop a standing query → [`UNSUB_DONE`].
    pub const UNSUBSCRIBE: u8 = 0x08;
    /// Move a standing query's issuer → one [`NOTIFY`] (cause = tick).
    pub const TICK: u8 = 0x09;
    /// Version-negotiation handshake (v6) → [`HELLO_ACK`]. Carries the
    /// sender's protocol version and [`Role`](super::Role); a version
    /// the server does not speak earns a typed
    /// [`ErrorCode::BadVersion`](super::ErrorCode::BadVersion) ERROR
    /// naming the supported version instead of a silent close.
    pub const HELLO: u8 = 0x0A;

    /// Query answer: the id/probability matches.
    pub const ANSWER: u8 = 0x81;
    /// Update batch accepted (buffered for the next commit).
    pub const UPDATE_ACK: u8 = 0x82;
    /// Commit applied; carries the [`super::CommitReport`] counters.
    pub const COMMIT_DONE: u8 = 0x83;
    /// Stats snapshot (epochs, sizes, allocation counters).
    pub const STATS_REPORT: u8 = 0x84;
    /// Liveness response.
    pub const PONG: u8 = 0x85;
    /// Subscription accepted: id, epoch, and the initial full answer.
    pub const SUB_ACK: u8 = 0x86;
    /// A standing query's answer changed: the delta against the last
    /// state delivered. Sent as the response to a [`TICK`]
    /// (cause = tick) **and pushed unsolicited** after a commit whose
    /// dirty region touched the subscription (cause = commit).
    pub const NOTIFY: u8 = 0x87;
    /// Unsubscribe processed; payload says whether the id was live.
    pub const UNSUB_DONE: u8 = 0x88;
    /// Handshake accepted: the responder's role, current epochs,
    /// recovered epochs and shard counts (see [`super::HelloAck`]).
    pub const HELLO_ACK: u8 = 0x89;
    /// Request failed; carries an [`super::ErrorCode`] and a message.
    pub const ERROR: u8 = 0xFF;
}

/// Error codes carried by [`opcode::ERROR`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Frame version byte ≠ [`PROTOCOL_VERSION`]. Connection closes.
    BadVersion = 1,
    /// Unknown request opcode.
    BadOpcode = 2,
    /// Payload truncated, trailing bytes, or a value out of range
    /// (non-finite coordinate, zero-area region, bad enum tag …).
    Malformed = 3,
    /// The request needs a pdf the wire format cannot carry
    /// (histogram / mixture / user-defined `Shared` pdfs).
    UnsupportedPdf = 4,
    /// Frame length exceeds [`MAX_FRAME_LEN`]. Connection closes.
    TooLarge = 5,
    /// The server failed internally while answering.
    Internal = 6,
    /// The connection holds the maximum number of standing
    /// subscriptions; unsubscribe before subscribing again.
    TooManySubscriptions = 7,
    /// A cluster node this request depends on is unreachable, or a
    /// failed cluster commit poisoned the catalog (v6, router only).
    /// The connection stays open; queries against the other catalog
    /// still work.
    Unavailable = 8,
}

impl ErrorCode {
    /// Decodes a wire byte back into a code.
    pub fn from_u8(v: u8) -> Option<ErrorCode> {
        match v {
            1 => Some(ErrorCode::BadVersion),
            2 => Some(ErrorCode::BadOpcode),
            3 => Some(ErrorCode::Malformed),
            4 => Some(ErrorCode::UnsupportedPdf),
            5 => Some(ErrorCode::TooLarge),
            6 => Some(ErrorCode::Internal),
            7 => Some(ErrorCode::TooManySubscriptions),
            8 => Some(ErrorCode::Unavailable),
            _ => None,
        }
    }
}

/// Why an encode or decode failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Payload ended early, carried trailing bytes, or held an
    /// out-of-range value; the message names the offending field.
    Malformed(&'static str),
    /// The pdf is a `Shared` handle the wire format cannot encode.
    UnsupportedPdf,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
            WireError::UnsupportedPdf => {
                write!(f, "pdf kind not encodable on the wire (shared/dynamic)")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// The error code a failed decode maps to on the wire.
impl From<WireError> for ErrorCode {
    fn from(e: WireError) -> ErrorCode {
        match e {
            WireError::Malformed(_) => ErrorCode::Malformed,
            WireError::UnsupportedPdf => ErrorCode::UnsupportedPdf,
        }
    }
}

/// Which catalog an update, commit or subscription addresses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CommitTarget {
    /// The point-object catalog (IPQ / C-IPQ data).
    #[default]
    Point,
    /// The uncertain-object catalog (IUQ / C-IUQ data).
    Uncertain,
}

/// One catalog mutation as it travels on the wire, tagged with the
/// catalog it routes to.
#[derive(Debug, Clone)]
pub enum WireUpdate {
    /// An update to the point catalog.
    Point(Update<PointObject>),
    /// An update to the uncertain catalog.
    Uncertain(Update<UncertainObject>),
}

/// Per-catalog slice of a [`StatsReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CatalogStats {
    /// Current epoch.
    pub epoch: u64,
    /// Live objects across all shards.
    pub len: u64,
    /// Updates buffered but not yet committed.
    pub pending: u64,
    /// Live objects per shard, in shard order.
    pub shard_sizes: Vec<u64>,
}

/// What a [`opcode::STATS_REPORT`] frame carries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsReport {
    /// `true` when the server process counts heap allocations (the
    /// standalone binary registers the counting allocator; a library
    /// embedding may not). When `false`, `allocations` is meaningless.
    pub alloc_counting: bool,
    /// Total heap allocations the server process has performed.
    pub allocations: u64,
    /// Frames the server has handled since start (all opcodes).
    pub requests_served: u64,
    /// Concurrent-connection capacity
    /// ([`ServerConfig::max_connections`](crate::server::ServerConfig));
    /// connections accepted beyond it are closed before any frame.
    /// Load generators size their client fleets against this.
    pub capacity: u32,
    /// Event-loop threads serving the connections. Scales with cores,
    /// not clients — thousands of connections multiplex onto each.
    pub event_loops: u32,
    /// Live connections right now (the accept/close gauge).
    pub connections: u64,
    /// NOTIFY push frames that were due to a subscriber but never
    /// delivered. Every count pairs with a connection close (push
    /// backpressure overflow, or a write failure with pushes queued) —
    /// a live connection never silently loses a push.
    pub dropped_pushes: u64,
    /// Point-catalog state.
    pub point: CatalogStats,
    /// Uncertain-catalog state.
    pub uncertain: CatalogStats,
    /// Nanoseconds the server's query pipelines have spent in the
    /// filter stage, summed over every query answered by every worker.
    pub filter_nanos: u64,
    /// Prune-stage nanoseconds, same accounting.
    pub prune_nanos: u64,
    /// Refine-stage nanoseconds, same accounting — the stage the SoA
    /// batching targets, so `refine / (filter + prune + refine)` read
    /// off two probes brackets where a workload's time actually goes.
    pub refine_nanos: u64,
    /// Histogram of refine-batch sizes (survivor counts per query) in
    /// the power-of-two-ish buckets of
    /// [`iloc_core::stats::refine_batch_bucket`].
    pub refine_batches: [u64; REFINE_BATCH_BUCKETS],
    /// Per-upstream-node health (v6). Empty on a plain server; a
    /// router reports one entry per cluster node, in node order.
    pub nodes: Vec<NodeHealth>,
}

/// One upstream node's health as a router reports it in the
/// STATS_REPORT node section (v6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeHealth {
    /// Whether every upstream connection to this node is live. A
    /// router that lost a node keeps serving the healthy catalog but
    /// reports the loss here (and answers affected requests with
    /// [`ErrorCode::Unavailable`]).
    pub connected: bool,
    /// The node's point-catalog epoch at the last exchange.
    pub point_epoch: u64,
    /// The node's uncertain-catalog epoch at the last exchange.
    pub uncertain_epoch: u64,
    /// Frames the router routed **to** this node (queries scattered,
    /// update sub-batches, commits, subscription ops).
    pub routed: u64,
    /// Response frames from this node merged into client answers.
    pub merged: u64,
}

/// The role a peer declares in its HELLO frame (v6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[repr(u8)]
pub enum Role {
    /// An ordinary query client.
    #[default]
    Client = 0,
    /// An `iloc-server` node.
    Server = 1,
    /// An `iloc-router` fronting a cluster of nodes.
    Router = 2,
}

impl Role {
    /// Decodes a wire byte back into a role.
    pub fn from_u8(v: u8) -> Option<Role> {
        match v {
            0 => Some(Role::Client),
            1 => Some(Role::Server),
            2 => Some(Role::Router),
            _ => None,
        }
    }
}

/// What a [`opcode::HELLO_ACK`] frame carries: the responder's role
/// and enough state introspection (epochs, recovered epochs, shard
/// counts) for a router to plan routing without a STATS round trip.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HelloAck {
    /// The responder's role ([`Role::Server`] from `iloc-server`,
    /// [`Role::Router`] from `iloc-router`).
    pub role: Role,
    /// Reserved capability flags; zero in v6.
    pub flags: u16,
    /// Current point-catalog epoch (a router reports its cluster
    /// epoch).
    pub point_epoch: u64,
    /// Current uncertain-catalog epoch.
    pub uncertain_epoch: u64,
    /// Point-catalog epoch recovered at process start (non-zero after
    /// a crash recovery; a router, being transient, reports zero).
    pub point_recovered: u64,
    /// Uncertain-catalog recovered epoch.
    pub uncertain_recovered: u64,
    /// Point-catalog shard count (a router reports the cluster-wide
    /// total across its nodes).
    pub point_shards: u32,
    /// Uncertain-catalog shard count.
    pub uncertain_shards: u32,
}

/// Process-wide counters the stats frame reports alongside the
/// catalogs (see [`crate::alloc_count`]).
#[derive(Debug, Clone, Copy)]
pub struct CountersView {
    /// Whether the process counts allocations.
    pub alloc_counting: bool,
    /// Allocations so far.
    pub allocations: u64,
    /// Frames handled so far.
    pub requests_served: u64,
    /// Concurrent-connection capacity.
    pub capacity: u32,
    /// Event-loop threads.
    pub event_loops: u32,
    /// Live connections right now.
    pub connections: u64,
    /// Pushes lost to backpressure closes, server-wide.
    pub dropped_pushes: u64,
    /// Summed filter-stage nanoseconds across all answered queries.
    pub filter_nanos: u64,
    /// Summed prune-stage nanoseconds.
    pub prune_nanos: u64,
    /// Summed refine-stage nanoseconds.
    pub refine_nanos: u64,
    /// Refine-batch size histogram
    /// ([`iloc_core::stats::refine_batch_bucket`] buckets).
    pub refine_batches: [u64; REFINE_BATCH_BUCKETS],
}

// ---------------------------------------------------------------------------
// Frame scaffolding
// ---------------------------------------------------------------------------

/// Opens a frame with the given opcode, returning its start offset for
/// [`finish_frame`]. Appends — callers batching frames clear the
/// buffer themselves.
pub fn begin_frame(buf: &mut Vec<u8>, op: u8) -> usize {
    let at = buf.len();
    buf.extend_from_slice(&0u32.to_le_bytes());
    buf.push(PROTOCOL_VERSION);
    buf.push(op);
    at
}

/// Patches the length field of the frame opened at `at`.
pub fn finish_frame(buf: &mut [u8], at: usize) {
    let len = (buf.len() - at - 4) as u32;
    buf[at..at + 4].copy_from_slice(&len.to_le_bytes());
}

/// A bounds-checked cursor over one frame's payload.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `payload`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(WireError::Malformed("payload truncated"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Next byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Next little-endian u16.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len")))
    }

    /// Next little-endian u32.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len")))
    }

    /// Next little-endian u64.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len")))
    }

    /// Next f64 (bit pattern; NaN/inf pass through — validate where
    /// finiteness matters).
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Next f64, required finite.
    pub fn finite(&mut self, what: &'static str) -> Result<f64, WireError> {
        let v = self.f64()?;
        if v.is_finite() {
            Ok(v)
        } else {
            Err(WireError::Malformed(what))
        }
    }

    /// Next `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Errors unless the payload was consumed exactly.
    pub fn done(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes"))
        }
    }
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

fn put_rect(buf: &mut Vec<u8>, r: Rect) {
    put_f64(buf, r.min.x);
    put_f64(buf, r.min.y);
    put_f64(buf, r.max.x);
    put_f64(buf, r.max.y);
}

/// Reads a rectangle with finite coordinates and `min ≤ max`.
fn read_rect(r: &mut Reader<'_>) -> Result<Rect, WireError> {
    let (x0, y0) = (r.finite("rect min.x")?, r.finite("rect min.y")?);
    let (x1, y1) = (r.finite("rect max.x")?, r.finite("rect max.y")?);
    if x0 > x1 || y0 > y1 {
        return Err(WireError::Malformed("rect min exceeds max"));
    }
    Ok(Rect::from_coords(x0, y0, x1, y1))
}

// ---------------------------------------------------------------------------
// Pdfs
// ---------------------------------------------------------------------------

const PDF_UNIFORM: u8 = 0;
const PDF_GAUSSIAN: u8 = 1;
const PDF_DISC: u8 = 2;

/// Appends one pdf. Only the concrete kinds travel on the wire;
/// `Shared` handles are rejected with [`WireError::UnsupportedPdf`].
pub fn put_pdf(buf: &mut Vec<u8>, pdf: &PdfKind) -> Result<(), WireError> {
    match pdf {
        PdfKind::Uniform(u) => {
            buf.push(PDF_UNIFORM);
            put_rect(buf, u.region());
        }
        PdfKind::Gaussian(g) => {
            buf.push(PDF_GAUSSIAN);
            put_rect(buf, g.region());
            put_f64(buf, g.mean().x);
            put_f64(buf, g.mean().y);
            put_f64(buf, g.sigma().0);
            put_f64(buf, g.sigma().1);
        }
        PdfKind::Disc(d) => {
            buf.push(PDF_DISC);
            let c = d.disc();
            put_f64(buf, c.center.x);
            put_f64(buf, c.center.y);
            put_f64(buf, c.radius);
        }
        PdfKind::Shared(_) => return Err(WireError::UnsupportedPdf),
    }
    Ok(())
}

/// Reads one pdf, validating every constructor precondition so
/// adversarial bytes produce an error frame rather than a panic.
pub fn read_pdf(r: &mut Reader<'_>) -> Result<PdfKind, WireError> {
    match r.u8()? {
        PDF_UNIFORM => {
            let region = read_rect(r)?;
            if region.area() <= 0.0 {
                return Err(WireError::Malformed("uniform pdf region has zero area"));
            }
            Ok(PdfKind::Uniform(UniformPdf::new(region)))
        }
        PDF_GAUSSIAN => {
            let region = read_rect(r)?;
            let mean = Point::new(r.finite("gaussian mean.x")?, r.finite("gaussian mean.y")?);
            let (sx, sy) = (r.finite("gaussian sigma.x")?, r.finite("gaussian sigma.y")?);
            if region.area() <= 0.0 {
                return Err(WireError::Malformed("gaussian region has zero area"));
            }
            if sx <= 0.0 || sy <= 0.0 {
                return Err(WireError::Malformed("gaussian sigma must be positive"));
            }
            // A mean inside the region guarantees the truncation keeps
            // positive mass on both axes (the constructor asserts it).
            if !region.contains_point(mean) {
                return Err(WireError::Malformed("gaussian mean outside its region"));
            }
            Ok(PdfKind::Gaussian(TruncatedGaussianPdf::new(
                region, mean, sx, sy,
            )))
        }
        PDF_DISC => {
            let center = Point::new(r.finite("disc center.x")?, r.finite("disc center.y")?);
            let radius = r.finite("disc radius")?;
            if radius <= 0.0 {
                return Err(WireError::Malformed("disc radius must be positive"));
            }
            Ok(PdfKind::Disc(DiscPdf::new(center, radius)))
        }
        _ => Err(WireError::Malformed("unknown pdf tag")),
    }
}

// ---------------------------------------------------------------------------
// Integrators, ranges, constraints
// ---------------------------------------------------------------------------

const INTEGRATOR_AUTO: u8 = 0;
const INTEGRATOR_EXACT: u8 = 1;
const INTEGRATOR_GRID: u8 = 2;
const INTEGRATOR_MC: u8 = 3;

fn put_integrator(buf: &mut Vec<u8>, integrator: Integrator) {
    match integrator {
        Integrator::Auto => buf.push(INTEGRATOR_AUTO),
        Integrator::Exact => buf.push(INTEGRATOR_EXACT),
        Integrator::Grid { per_axis } => {
            buf.push(INTEGRATOR_GRID);
            put_u32(buf, per_axis as u32);
        }
        Integrator::MonteCarlo { samples } => {
            buf.push(INTEGRATOR_MC);
            put_u32(buf, samples as u32);
        }
    }
}

fn read_integrator(r: &mut Reader<'_>) -> Result<Integrator, WireError> {
    match r.u8()? {
        INTEGRATOR_AUTO => Ok(Integrator::Auto),
        INTEGRATOR_EXACT => Ok(Integrator::Exact),
        INTEGRATOR_GRID => {
            let per_axis = r.u32()?;
            if per_axis == 0 || per_axis > MAX_GRID_PER_AXIS {
                return Err(WireError::Malformed("grid per_axis out of range"));
            }
            Ok(Integrator::Grid {
                per_axis: per_axis as usize,
            })
        }
        INTEGRATOR_MC => {
            let samples = r.u32()?;
            if samples == 0 || samples > MAX_MC_SAMPLES {
                return Err(WireError::Malformed("monte-carlo samples out of range"));
            }
            Ok(Integrator::MonteCarlo {
                samples: samples as usize,
            })
        }
        _ => Err(WireError::Malformed("unknown integrator tag")),
    }
}

fn put_range(buf: &mut Vec<u8>, range: RangeSpec) {
    put_f64(buf, range.w);
    put_f64(buf, range.h);
}

fn read_range(r: &mut Reader<'_>) -> Result<RangeSpec, WireError> {
    let w = r.finite("range w")?;
    let h = r.finite("range h")?;
    if w < 0.0 || h < 0.0 {
        return Err(WireError::Malformed("range half-extents must be >= 0"));
    }
    Ok(RangeSpec::new(w, h))
}

fn read_qp(r: &mut Reader<'_>) -> Result<f64, WireError> {
    let qp = r.finite("constraint qp")?;
    if !(0.0..=1.0).contains(&qp) {
        return Err(WireError::Malformed("constraint qp outside [0, 1]"));
    }
    Ok(qp)
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

/// Appends the shared query body (pdf, range, integrator, constraint)
/// of a point request.
fn put_point_query_body(buf: &mut Vec<u8>, request: &PointRequest) -> Result<(), WireError> {
    put_pdf(buf, request.issuer.pdf())?;
    put_range(buf, request.range);
    put_integrator(buf, request.integrator);
    match request.constraint {
        None => buf.push(0),
        Some(c) => {
            buf.push(1);
            put_f64(buf, c.qp);
            buf.push(match c.strategy {
                CipqStrategy::MinkowskiSum => 0,
                CipqStrategy::PExpanded => 1,
            });
        }
    }
    Ok(())
}

/// Reads the shared query body into a reusable point-request slot.
fn read_point_query_body(r: &mut Reader<'_>, request: &mut PointRequest) -> Result<(), WireError> {
    let pdf = read_pdf(r)?;
    let range = read_range(r)?;
    let integrator = read_integrator(r)?;
    let constraint = match r.u8()? {
        0 => None,
        1 => {
            let qp = read_qp(r)?;
            let strategy = match r.u8()? {
                0 => CipqStrategy::MinkowskiSum,
                1 => CipqStrategy::PExpanded,
                _ => return Err(WireError::Malformed("unknown C-IPQ strategy")),
            };
            Some(PointConstraint { qp, strategy })
        }
        _ => return Err(WireError::Malformed("bad constraint flag")),
    };
    request.issuer.set_pdf(pdf);
    request.range = range;
    request.integrator = integrator;
    request.constraint = constraint;
    Ok(())
}

/// Appends the shared query body of an uncertain request.
fn put_uncertain_query_body(
    buf: &mut Vec<u8>,
    request: &UncertainRequest,
) -> Result<(), WireError> {
    put_pdf(buf, request.issuer.pdf())?;
    put_range(buf, request.range);
    put_integrator(buf, request.integrator);
    match request.constraint {
        None => buf.push(0),
        Some(c) => {
            buf.push(1);
            put_f64(buf, c.qp);
            buf.push(match c.strategy {
                CiuqStrategy::RTreeMinkowski => 0,
                CiuqStrategy::PtiPExpanded => 1,
            });
        }
    }
    Ok(())
}

/// Reads the shared query body into a reusable uncertain-request slot.
fn read_uncertain_query_body(
    r: &mut Reader<'_>,
    request: &mut UncertainRequest,
) -> Result<(), WireError> {
    let pdf = read_pdf(r)?;
    let range = read_range(r)?;
    let integrator = read_integrator(r)?;
    let constraint = match r.u8()? {
        0 => None,
        1 => {
            let qp = read_qp(r)?;
            let strategy = match r.u8()? {
                0 => CiuqStrategy::RTreeMinkowski,
                1 => CiuqStrategy::PtiPExpanded,
                _ => return Err(WireError::Malformed("unknown C-IUQ strategy")),
            };
            Some(UncertainConstraint { qp, strategy })
        }
        _ => return Err(WireError::Malformed("bad constraint flag")),
    };
    request.issuer.set_pdf(pdf);
    request.range = range;
    request.integrator = integrator;
    request.constraint = constraint;
    Ok(())
}

/// Appends an [`opcode::POINT_QUERY`] frame for `request`.
pub fn encode_point_query(buf: &mut Vec<u8>, request: &PointRequest) -> Result<(), WireError> {
    let at = begin_frame(buf, opcode::POINT_QUERY);
    let result = put_point_query_body(buf, request);
    if result.is_err() {
        buf.truncate(at);
        return result;
    }
    finish_frame(buf, at);
    Ok(())
}

/// Decodes an [`opcode::POINT_QUERY`] payload **into** a reusable
/// request slot: the issuer's pdf and U-catalog are rebuilt in place,
/// so a warm slot makes this allocation-free.
pub fn decode_point_query_into(
    payload: &[u8],
    request: &mut PointRequest,
) -> Result<(), WireError> {
    let mut r = Reader::new(payload);
    read_point_query_body(&mut r, request)?;
    r.done()
}

/// Appends an [`opcode::UNCERTAIN_QUERY`] frame for `request`.
pub fn encode_uncertain_query(
    buf: &mut Vec<u8>,
    request: &UncertainRequest,
) -> Result<(), WireError> {
    let at = begin_frame(buf, opcode::UNCERTAIN_QUERY);
    let result = put_uncertain_query_body(buf, request);
    if result.is_err() {
        buf.truncate(at);
        return result;
    }
    finish_frame(buf, at);
    Ok(())
}

/// Decodes an [`opcode::UNCERTAIN_QUERY`] payload into a reusable
/// request slot (allocation-free once warm, like the point variant).
pub fn decode_uncertain_query_into(
    payload: &[u8],
    request: &mut UncertainRequest,
) -> Result<(), WireError> {
    let mut r = Reader::new(payload);
    read_uncertain_query_body(&mut r, request)?;
    r.done()
}

// ---------------------------------------------------------------------------
// Subscriptions
// ---------------------------------------------------------------------------

/// Why a [`opcode::NOTIFY`] frame was sent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[repr(u8)]
pub enum NotifyCause {
    /// Pushed unsolicited: a commit's dirty region stabbed the
    /// subscription's envelope and its answer changed.
    #[default]
    Commit = 0,
    /// The in-order response to a [`opcode::TICK`] frame.
    Tick = 1,
}

/// One decoded [`opcode::NOTIFY`] frame: which standing query changed,
/// the epoch its state now reflects, and the delta to apply. A
/// `Default` value is a reusable slot — [`decode_notify_into`] reuses
/// the delta's buffers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Notification {
    /// The catalog the subscription stands on.
    pub target: CommitTarget,
    /// The subscription (ids are per connection and catalog).
    pub sub_id: u64,
    /// The epoch the subscription's state reflects after this delta.
    pub epoch: u64,
    /// Why the frame was sent.
    pub cause: NotifyCause,
    /// The answer change to apply.
    pub delta: AnswerDelta,
}

/// Validates a subscription's slack margin: finite, non-negative —
/// the single definition of the slack domain, shared by both encoders
/// and the decode boundary. The wire-level mirror of the constructor
/// asserts in [`iloc_core::continuous::ContinuousIpq::new`] and
/// [`iloc_core::subscribe::SubscriptionRegistry::subscribe`]:
/// adversarial subscribe frames become typed error frames, never
/// panics.
fn validate_slack(slack: f64) -> Result<(), WireError> {
    if !slack.is_finite() || slack < 0.0 {
        return Err(WireError::Malformed(
            "subscription slack must be finite and >= 0",
        ));
    }
    Ok(())
}

/// Reads and validates a subscription's slack margin.
fn read_slack(r: &mut Reader<'_>) -> Result<f64, WireError> {
    let slack = r.f64()?;
    validate_slack(slack)?;
    Ok(slack)
}

/// Appends an [`opcode::SUBSCRIBE`] frame for a standing point query.
pub fn encode_subscribe_point(
    buf: &mut Vec<u8>,
    slack: f64,
    request: &PointRequest,
) -> Result<(), WireError> {
    validate_slack(slack)?;
    let at = begin_frame(buf, opcode::SUBSCRIBE);
    put_target(buf, CommitTarget::Point);
    put_f64(buf, slack);
    let result = put_point_query_body(buf, request);
    if result.is_err() {
        buf.truncate(at);
        return result;
    }
    finish_frame(buf, at);
    Ok(())
}

/// Appends an [`opcode::SUBSCRIBE`] frame for a standing uncertain
/// query.
pub fn encode_subscribe_uncertain(
    buf: &mut Vec<u8>,
    slack: f64,
    request: &UncertainRequest,
) -> Result<(), WireError> {
    validate_slack(slack)?;
    let at = begin_frame(buf, opcode::SUBSCRIBE);
    put_target(buf, CommitTarget::Uncertain);
    put_f64(buf, slack);
    let result = put_uncertain_query_body(buf, request);
    if result.is_err() {
        buf.truncate(at);
        return result;
    }
    finish_frame(buf, at);
    Ok(())
}

/// Reads a [`opcode::SUBSCRIBE`] payload's header, leaving the reader
/// at the query body (decode it with the target-appropriate
/// `decode_subscribe_*_body`).
pub fn decode_subscribe_header(r: &mut Reader<'_>) -> Result<(CommitTarget, f64), WireError> {
    let target = read_target(r)?;
    let slack = read_slack(r)?;
    Ok((target, slack))
}

/// Decodes the point-query body of a [`opcode::SUBSCRIBE`] payload
/// into a reusable slot (allocation-free once warm).
pub fn decode_subscribe_point_body(
    r: &mut Reader<'_>,
    request: &mut PointRequest,
) -> Result<(), WireError> {
    read_point_query_body(r, request)?;
    r.done()
}

/// Decodes the uncertain-query body of a [`opcode::SUBSCRIBE`] payload
/// into a reusable slot.
pub fn decode_subscribe_uncertain_body(
    r: &mut Reader<'_>,
    request: &mut UncertainRequest,
) -> Result<(), WireError> {
    read_uncertain_query_body(r, request)?;
    r.done()
}

/// Appends an [`opcode::UNSUBSCRIBE`] frame.
pub fn encode_unsubscribe(buf: &mut Vec<u8>, target: CommitTarget, sub_id: u64) {
    let at = begin_frame(buf, opcode::UNSUBSCRIBE);
    put_target(buf, target);
    put_u64(buf, sub_id);
    finish_frame(buf, at);
}

/// Decodes an [`opcode::UNSUBSCRIBE`] payload.
pub fn decode_unsubscribe(payload: &[u8]) -> Result<(CommitTarget, u64), WireError> {
    let mut r = Reader::new(payload);
    let target = read_target(&mut r)?;
    let sub_id = r.u64()?;
    r.done()?;
    Ok((target, sub_id))
}

/// Appends an [`opcode::UNSUB_DONE`] frame.
pub fn encode_unsub_done(buf: &mut Vec<u8>, existed: bool) {
    let at = begin_frame(buf, opcode::UNSUB_DONE);
    buf.push(existed as u8);
    finish_frame(buf, at);
}

/// Decodes an [`opcode::UNSUB_DONE`] payload.
pub fn decode_unsub_done(payload: &[u8]) -> Result<bool, WireError> {
    let mut r = Reader::new(payload);
    let existed = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(WireError::Malformed("bad unsubscribe flag")),
    };
    r.done()?;
    Ok(existed)
}

/// Appends an [`opcode::TICK`] frame: the subscription's issuer moved
/// to a new pdf. The standing query's range, integrator and constraint
/// are fixed at subscribe time — a tick carries only the position.
pub fn encode_tick(
    buf: &mut Vec<u8>,
    target: CommitTarget,
    sub_id: u64,
    pdf: &PdfKind,
) -> Result<(), WireError> {
    let at = begin_frame(buf, opcode::TICK);
    put_target(buf, target);
    put_u64(buf, sub_id);
    let result = put_pdf(buf, pdf);
    if result.is_err() {
        buf.truncate(at);
        return result;
    }
    finish_frame(buf, at);
    Ok(())
}

/// Decodes an [`opcode::TICK`] payload (the pdf is validated exactly
/// like a query's issuer pdf).
pub fn decode_tick(payload: &[u8]) -> Result<(CommitTarget, u64, PdfKind), WireError> {
    let mut r = Reader::new(payload);
    let target = read_target(&mut r)?;
    let sub_id = r.u64()?;
    let pdf = read_pdf(&mut r)?;
    r.done()?;
    Ok((target, sub_id, pdf))
}

/// Appends an [`opcode::SUB_ACK`] frame: the new subscription's id,
/// the epoch it evaluated against, the epoch this server process
/// recovered at (0 for a fresh or transient catalog — a reconnecting
/// client that sees it change knows the server restarted), and the
/// initial full answer.
pub fn encode_sub_ack(
    buf: &mut Vec<u8>,
    target: CommitTarget,
    sub_id: u64,
    epoch: u64,
    recovered_epoch: u64,
    initial: &[iloc_core::Match],
) {
    let at = begin_frame(buf, opcode::SUB_ACK);
    put_target(buf, target);
    put_u64(buf, sub_id);
    put_u64(buf, epoch);
    put_u64(buf, recovered_epoch);
    put_u32(buf, initial.len() as u32);
    for m in initial {
        put_u64(buf, m.id.0);
        put_u64(buf, m.probability.to_bits());
    }
    finish_frame(buf, at);
}

/// Decodes an [`opcode::SUB_ACK`] payload, overwriting `answer` with
/// the initial matches; returns
/// `(target, sub_id, epoch, recovered_epoch)`.
pub fn decode_sub_ack_into(
    payload: &[u8],
    answer: &mut QueryAnswer,
) -> Result<(CommitTarget, u64, u64, u64), WireError> {
    let mut r = Reader::new(payload);
    let target = read_target(&mut r)?;
    let sub_id = r.u64()?;
    let epoch = r.u64()?;
    let recovered_epoch = r.u64()?;
    answer.results.clear();
    answer.stats = Default::default();
    let count = r.u32()?;
    for _ in 0..count {
        let id = ObjectId(r.u64()?);
        let probability = f64::from_bits(r.u64()?);
        answer.results.push(iloc_core::Match { id, probability });
    }
    r.done()?;
    Ok((target, sub_id, epoch, recovered_epoch))
}

/// Appends an [`opcode::NOTIFY`] frame carrying `delta` (id-sorted
/// upserts then removals, probabilities as bit patterns — applying the
/// delta client-side reproduces the server's fresh answer
/// bit-identically).
pub fn encode_notify(
    buf: &mut Vec<u8>,
    target: CommitTarget,
    sub_id: u64,
    epoch: u64,
    cause: NotifyCause,
    delta: &AnswerDelta,
) {
    let at = begin_frame(buf, opcode::NOTIFY);
    put_target(buf, target);
    put_u64(buf, sub_id);
    put_u64(buf, epoch);
    buf.push(cause as u8);
    put_u32(buf, delta.upserts.len() as u32);
    for m in &delta.upserts {
        put_u64(buf, m.id.0);
        put_u64(buf, m.probability.to_bits());
    }
    put_u32(buf, delta.removals.len() as u32);
    for id in &delta.removals {
        put_u64(buf, id.0);
    }
    finish_frame(buf, at);
}

/// Decodes an [`opcode::NOTIFY`] payload into a reusable slot (the
/// delta's buffers keep their capacity).
pub fn decode_notify_into(payload: &[u8], out: &mut Notification) -> Result<(), WireError> {
    let mut r = Reader::new(payload);
    out.target = read_target(&mut r)?;
    out.sub_id = r.u64()?;
    out.epoch = r.u64()?;
    out.cause = match r.u8()? {
        0 => NotifyCause::Commit,
        1 => NotifyCause::Tick,
        _ => return Err(WireError::Malformed("unknown notify cause")),
    };
    out.delta.clear();
    let upserts = r.u32()?;
    for _ in 0..upserts {
        let id = ObjectId(r.u64()?);
        let probability = f64::from_bits(r.u64()?);
        out.delta.upserts.push(iloc_core::Match { id, probability });
    }
    let removals = r.u32()?;
    for _ in 0..removals {
        out.delta.removals.push(ObjectId(r.u64()?));
    }
    r.done()
}

// ---------------------------------------------------------------------------
// Updates and commits
// ---------------------------------------------------------------------------

const TARGET_POINT: u8 = 0;
const TARGET_UNCERTAIN: u8 = 1;

const UPDATE_ARRIVE: u8 = 0;
const UPDATE_DEPART: u8 = 1;
const UPDATE_MOVE: u8 = 2;

fn put_target(buf: &mut Vec<u8>, target: CommitTarget) {
    buf.push(match target {
        CommitTarget::Point => TARGET_POINT,
        CommitTarget::Uncertain => TARGET_UNCERTAIN,
    });
}

fn read_target(r: &mut Reader<'_>) -> Result<CommitTarget, WireError> {
    match r.u8()? {
        TARGET_POINT => Ok(CommitTarget::Point),
        TARGET_UNCERTAIN => Ok(CommitTarget::Uncertain),
        _ => Err(WireError::Malformed("unknown catalog target")),
    }
}

/// Appends an [`opcode::UPDATE_BATCH`] frame carrying `updates`.
pub fn encode_update_batch(buf: &mut Vec<u8>, updates: &[WireUpdate]) -> Result<(), WireError> {
    let at = begin_frame(buf, opcode::UPDATE_BATCH);
    put_u32(buf, updates.len() as u32);
    for update in updates {
        let result = put_update(buf, update);
        if result.is_err() {
            buf.truncate(at);
            return result;
        }
    }
    finish_frame(buf, at);
    Ok(())
}

fn put_update(buf: &mut Vec<u8>, update: &WireUpdate) -> Result<(), WireError> {
    match update {
        WireUpdate::Point(u) => {
            buf.push(TARGET_POINT);
            match u {
                Update::Arrive(o) | Update::Move(o) => {
                    buf.push(if matches!(u, Update::Arrive(_)) {
                        UPDATE_ARRIVE
                    } else {
                        UPDATE_MOVE
                    });
                    put_u64(buf, o.id.0);
                    put_f64(buf, o.loc.x);
                    put_f64(buf, o.loc.y);
                }
                Update::Depart(id) => {
                    buf.push(UPDATE_DEPART);
                    put_u64(buf, id.0);
                }
            }
        }
        WireUpdate::Uncertain(u) => {
            buf.push(TARGET_UNCERTAIN);
            match u {
                Update::Arrive(o) | Update::Move(o) => {
                    buf.push(if matches!(u, Update::Arrive(_)) {
                        UPDATE_ARRIVE
                    } else {
                        UPDATE_MOVE
                    });
                    put_u64(buf, o.id.0);
                    put_pdf(buf, o.pdf())?;
                }
                Update::Depart(id) => {
                    buf.push(UPDATE_DEPART);
                    put_u64(buf, id.0);
                }
            }
        }
    }
    Ok(())
}

/// Decodes an [`opcode::UPDATE_BATCH`] payload, appending the updates
/// to `out` (cleared first). Uncertain arrivals rebuild their
/// U-catalog server-side — updates are the ingestion path, which the
/// paper's cost model (and the zero-allocation invariant) excludes
/// from query execution.
pub fn decode_update_batch(payload: &[u8], out: &mut Vec<WireUpdate>) -> Result<(), WireError> {
    out.clear();
    let mut r = Reader::new(payload);
    let count = r.u32()?;
    for _ in 0..count {
        let target = read_target(&mut r)?;
        let kind = r.u8()?;
        let id = r.u64()?;
        let update = match (target, kind) {
            (CommitTarget::Point, UPDATE_DEPART) => WireUpdate::Point(Update::Depart(ObjectId(id))),
            (CommitTarget::Point, UPDATE_ARRIVE | UPDATE_MOVE) => {
                let x = r.finite("point loc.x")?;
                let y = r.finite("point loc.y")?;
                let object = PointObject::new(id, Point::new(x, y));
                WireUpdate::Point(if kind == UPDATE_ARRIVE {
                    Update::Arrive(object)
                } else {
                    Update::Move(object)
                })
            }
            (CommitTarget::Uncertain, UPDATE_DEPART) => {
                WireUpdate::Uncertain(Update::Depart(ObjectId(id)))
            }
            (CommitTarget::Uncertain, UPDATE_ARRIVE | UPDATE_MOVE) => {
                let pdf = read_pdf(&mut r)?;
                let object = UncertainObject::new(id, pdf);
                WireUpdate::Uncertain(if kind == UPDATE_ARRIVE {
                    Update::Arrive(object)
                } else {
                    Update::Move(object)
                })
            }
            _ => return Err(WireError::Malformed("unknown update kind")),
        };
        out.push(update);
    }
    r.done()
}

/// Appends an [`opcode::COMMIT`] frame for one catalog.
pub fn encode_commit(buf: &mut Vec<u8>, target: CommitTarget) {
    let at = begin_frame(buf, opcode::COMMIT);
    put_target(buf, target);
    finish_frame(buf, at);
}

/// Decodes an [`opcode::COMMIT`] payload.
pub fn decode_commit(payload: &[u8]) -> Result<CommitTarget, WireError> {
    let mut r = Reader::new(payload);
    let target = read_target(&mut r)?;
    r.done()?;
    Ok(target)
}

/// Appends an empty-payload frame ([`opcode::STATS`], [`opcode::PING`],
/// [`opcode::PONG`]).
pub fn encode_empty(buf: &mut Vec<u8>, op: u8) {
    let at = begin_frame(buf, op);
    finish_frame(buf, at);
}

/// Appends an [`opcode::HELLO`] frame: the sender's protocol version
/// (repeated in the payload so the responder can name it in a
/// [`ErrorCode::BadVersion`] ERROR even when it doesn't parse the
/// sender's frame header version), its [`Role`], and reserved flags.
pub fn encode_hello(buf: &mut Vec<u8>, role: Role, flags: u16) {
    let at = begin_frame(buf, opcode::HELLO);
    buf.push(PROTOCOL_VERSION);
    buf.push(role as u8);
    put_u16(buf, flags);
    finish_frame(buf, at);
}

/// Decodes an [`opcode::HELLO`] payload into
/// `(version, role, flags)`. The version comes back raw — the caller
/// decides whether it can serve that dialect; an unknown role byte is
/// malformed.
pub fn decode_hello(payload: &[u8]) -> Result<(u8, Role, u16), WireError> {
    let mut r = Reader::new(payload);
    let version = r.u8()?;
    let role = Role::from_u8(r.u8()?).ok_or(WireError::Malformed("hello role"))?;
    let flags = r.u16()?;
    r.done()?;
    Ok((version, role, flags))
}

/// Peeks the version byte out of an [`opcode::HELLO`] payload without
/// validating the rest — what a responder uses to word its
/// [`ErrorCode::BadVersion`] reply for a peer from the future whose
/// HELLO body it cannot fully parse.
pub fn hello_peer_version(payload: &[u8]) -> Option<u8> {
    payload.first().copied()
}

/// Appends an [`opcode::HELLO_ACK`] frame.
pub fn encode_hello_ack(buf: &mut Vec<u8>, ack: &HelloAck) {
    let at = begin_frame(buf, opcode::HELLO_ACK);
    buf.push(PROTOCOL_VERSION);
    buf.push(ack.role as u8);
    put_u16(buf, ack.flags);
    put_u64(buf, ack.point_epoch);
    put_u64(buf, ack.uncertain_epoch);
    put_u64(buf, ack.point_recovered);
    put_u64(buf, ack.uncertain_recovered);
    put_u32(buf, ack.point_shards);
    put_u32(buf, ack.uncertain_shards);
    finish_frame(buf, at);
}

/// Decodes an [`opcode::HELLO_ACK`] payload.
pub fn decode_hello_ack(payload: &[u8]) -> Result<HelloAck, WireError> {
    let mut r = Reader::new(payload);
    let version = r.u8()?;
    if version != PROTOCOL_VERSION {
        return Err(WireError::Malformed("hello_ack version"));
    }
    let ack = HelloAck {
        role: Role::from_u8(r.u8()?).ok_or(WireError::Malformed("hello_ack role"))?,
        flags: r.u16()?,
        point_epoch: r.u64()?,
        uncertain_epoch: r.u64()?,
        point_recovered: r.u64()?,
        uncertain_recovered: r.u64()?,
        point_shards: r.u32()?,
        uncertain_shards: r.u32()?,
    };
    r.done()?;
    Ok(ack)
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Appends an [`opcode::ANSWER`] frame: the matches (ids + probability
/// bit patterns) of `answer`. Stats stay server-side; probe them with
/// [`opcode::STATS`].
pub fn encode_answer(buf: &mut Vec<u8>, answer: &QueryAnswer) {
    let at = begin_frame(buf, opcode::ANSWER);
    put_u32(buf, answer.results.len() as u32);
    for m in &answer.results {
        put_u64(buf, m.id.0);
        put_u64(buf, m.probability.to_bits());
    }
    finish_frame(buf, at);
}

/// Decodes an [`opcode::ANSWER`] payload into a reusable answer
/// (results overwritten, stats zeroed; allocation-free once the match
/// buffer has grown to workload size).
pub fn decode_answer_into(payload: &[u8], answer: &mut QueryAnswer) -> Result<(), WireError> {
    answer.results.clear();
    answer.stats = Default::default();
    let mut r = Reader::new(payload);
    let count = r.u32()?;
    for _ in 0..count {
        let id = ObjectId(r.u64()?);
        let probability = f64::from_bits(r.u64()?);
        answer.results.push(iloc_core::Match { id, probability });
    }
    r.done()
}

/// Appends an [`opcode::UPDATE_ACK`] frame.
pub fn encode_update_ack(buf: &mut Vec<u8>, accepted: u32) {
    let at = begin_frame(buf, opcode::UPDATE_ACK);
    put_u32(buf, accepted);
    finish_frame(buf, at);
}

/// Decodes an [`opcode::UPDATE_ACK`] payload.
pub fn decode_update_ack(payload: &[u8]) -> Result<u32, WireError> {
    let mut r = Reader::new(payload);
    let accepted = r.u32()?;
    r.done()?;
    Ok(accepted)
}

/// Appends an [`opcode::COMMIT_DONE`] frame for `report`, including
/// the per-shard applied counts and the merged dirty rectangle (what
/// moved, and where — the same footprint subscription wake-up stabs
/// envelopes with).
pub fn encode_commit_done(buf: &mut Vec<u8>, report: &CommitReport) {
    let at = begin_frame(buf, opcode::COMMIT_DONE);
    put_u64(buf, report.epoch);
    put_u32(buf, report.arrivals as u32);
    put_u32(buf, report.departures as u32);
    put_u32(buf, report.moves as u32);
    put_u32(buf, report.missed_departures as u32);
    match report.dirty {
        None => buf.push(0),
        Some(d) => {
            buf.push(1);
            put_rect(buf, d);
        }
    }
    put_u32(buf, report.per_shard.len() as u32);
    for &n in &report.per_shard {
        put_u32(buf, n as u32);
    }
    finish_frame(buf, at);
}

/// Decodes an [`opcode::COMMIT_DONE`] payload.
pub fn decode_commit_done(payload: &[u8]) -> Result<CommitReport, WireError> {
    let mut r = Reader::new(payload);
    let mut report = CommitReport {
        epoch: r.u64()?,
        arrivals: r.u32()? as usize,
        departures: r.u32()? as usize,
        moves: r.u32()? as usize,
        missed_departures: r.u32()? as usize,
        ..CommitReport::default()
    };
    report.dirty = match r.u8()? {
        0 => None,
        1 => Some(read_rect(&mut r)?),
        _ => return Err(WireError::Malformed("bad dirty-rect flag")),
    };
    let shards = r.u32()?;
    for _ in 0..shards {
        report.per_shard.push(r.u32()? as usize);
    }
    r.done()?;
    Ok(report)
}

fn put_catalog<E: ServeEngine>(buf: &mut Vec<u8>, snapshot: &Snapshot<E>, pending: u64) {
    put_u64(buf, snapshot.epoch());
    put_u64(buf, snapshot.len() as u64);
    put_u64(buf, pending);
    put_u32(buf, snapshot.shard_count() as u32);
    for n in snapshot.shard_sizes() {
        put_u64(buf, n as u64);
    }
}

/// Appends an [`opcode::STATS_REPORT`] frame directly from engine
/// snapshots (no intermediate allocation — the stats path stays on the
/// server's allocation-free budget).
pub fn encode_stats_report<P: ServeEngine, U: ServeEngine>(
    buf: &mut Vec<u8>,
    counters: CountersView,
    point: (&Snapshot<P>, u64),
    uncertain: (&Snapshot<U>, u64),
) {
    let at = begin_frame(buf, opcode::STATS_REPORT);
    buf.push(counters.alloc_counting as u8);
    put_u64(buf, counters.allocations);
    put_u64(buf, counters.requests_served);
    put_u32(buf, counters.capacity);
    put_u32(buf, counters.event_loops);
    put_u64(buf, counters.connections);
    put_u64(buf, counters.dropped_pushes);
    put_catalog(buf, point.0, point.1);
    put_catalog(buf, uncertain.0, uncertain.1);
    put_u64(buf, counters.filter_nanos);
    put_u64(buf, counters.prune_nanos);
    put_u64(buf, counters.refine_nanos);
    for &n in &counters.refine_batches {
        put_u64(buf, n);
    }
    put_u32(buf, 0); // node section (v6): a plain server has no upstream nodes
    finish_frame(buf, at);
}

/// Appends an [`opcode::STATS_REPORT`] frame from an already-filled
/// report — the router's path: it has no engine snapshots of its own,
/// it aggregates node reports into a [`StatsReport`] (warm buffers,
/// allocation-free) and serializes that, including the per-node health
/// section.
pub fn encode_stats_report_from(buf: &mut Vec<u8>, report: &StatsReport) {
    let at = begin_frame(buf, opcode::STATS_REPORT);
    buf.push(report.alloc_counting as u8);
    put_u64(buf, report.allocations);
    put_u64(buf, report.requests_served);
    put_u32(buf, report.capacity);
    put_u32(buf, report.event_loops);
    put_u64(buf, report.connections);
    put_u64(buf, report.dropped_pushes);
    for cat in [&report.point, &report.uncertain] {
        put_u64(buf, cat.epoch);
        put_u64(buf, cat.len);
        put_u64(buf, cat.pending);
        put_u32(buf, cat.shard_sizes.len() as u32);
        for &n in &cat.shard_sizes {
            put_u64(buf, n);
        }
    }
    put_u64(buf, report.filter_nanos);
    put_u64(buf, report.prune_nanos);
    put_u64(buf, report.refine_nanos);
    for &n in &report.refine_batches {
        put_u64(buf, n);
    }
    put_u32(buf, report.nodes.len() as u32);
    for node in &report.nodes {
        buf.push(node.connected as u8);
        put_u64(buf, node.point_epoch);
        put_u64(buf, node.uncertain_epoch);
        put_u64(buf, node.routed);
        put_u64(buf, node.merged);
    }
    finish_frame(buf, at);
}

fn read_catalog_into(r: &mut Reader<'_>, out: &mut CatalogStats) -> Result<(), WireError> {
    out.epoch = r.u64()?;
    out.len = r.u64()?;
    out.pending = r.u64()?;
    let shards = r.u32()?;
    out.shard_sizes.clear();
    for _ in 0..shards {
        out.shard_sizes.push(r.u64()?);
    }
    Ok(())
}

/// Decodes an [`opcode::STATS_REPORT`] payload into a reusable report
/// (shard-size buffers keep their capacity).
pub fn decode_stats_report_into(payload: &[u8], out: &mut StatsReport) -> Result<(), WireError> {
    let mut r = Reader::new(payload);
    out.alloc_counting = r.u8()? != 0;
    out.allocations = r.u64()?;
    out.requests_served = r.u64()?;
    out.capacity = r.u32()?;
    out.event_loops = r.u32()?;
    out.connections = r.u64()?;
    out.dropped_pushes = r.u64()?;
    read_catalog_into(&mut r, &mut out.point)?;
    read_catalog_into(&mut r, &mut out.uncertain)?;
    out.filter_nanos = r.u64()?;
    out.prune_nanos = r.u64()?;
    out.refine_nanos = r.u64()?;
    for slot in &mut out.refine_batches {
        *slot = r.u64()?;
    }
    let node_count = r.u32()?;
    out.nodes.clear();
    for _ in 0..node_count {
        out.nodes.push(NodeHealth {
            connected: r.u8()? != 0,
            point_epoch: r.u64()?,
            uncertain_epoch: r.u64()?,
            routed: r.u64()?,
            merged: r.u64()?,
        });
    }
    r.done()
}

/// Appends an [`opcode::ERROR`] frame.
pub fn encode_error(buf: &mut Vec<u8>, code: ErrorCode, message: &str) {
    let at = begin_frame(buf, opcode::ERROR);
    buf.push(code as u8);
    let bytes = message.as_bytes();
    let n = bytes.len().min(u16::MAX as usize);
    put_u16(buf, n as u16);
    buf.extend_from_slice(&bytes[..n]);
    finish_frame(buf, at);
}

/// Decodes an [`opcode::ERROR`] payload into `(code, message)`.
pub fn decode_error(payload: &[u8]) -> Result<(u8, String), WireError> {
    let mut r = Reader::new(payload);
    let code = r.u8()?;
    let n = r.u16()? as usize;
    let message = String::from_utf8_lossy(r.bytes(n)?).into_owned();
    r.done()?;
    Ok((code, message))
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc_core::Issuer;

    fn frame_payload(buf: &[u8]) -> (u8, &[u8]) {
        let len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
        assert_eq!(len + 4, buf.len(), "frame length field");
        assert_eq!(buf[4], PROTOCOL_VERSION);
        (buf[5], &buf[6..])
    }

    fn slot_point_request() -> PointRequest {
        PointRequest::ipq(
            Issuer::uniform(Rect::from_coords(0.0, 0.0, 1.0, 1.0)),
            RangeSpec::square(1.0),
        )
    }

    fn slot_uncertain_request() -> UncertainRequest {
        UncertainRequest::iuq(
            Issuer::uniform(Rect::from_coords(0.0, 0.0, 1.0, 1.0)),
            RangeSpec::square(1.0),
        )
    }

    #[test]
    fn point_query_round_trips_every_field() {
        let cases = vec![
            PointRequest::ipq(
                Issuer::uniform(Rect::from_coords(10.0, 20.0, 110.0, 220.0)),
                RangeSpec::new(30.0, 40.0),
            ),
            PointRequest::cipq(
                Issuer::gaussian(Rect::from_coords(0.0, 0.0, 60.0, 60.0)),
                RangeSpec::square(25.0),
                0.3,
                CipqStrategy::PExpanded,
            )
            .with_integrator(Integrator::MonteCarlo { samples: 200 }),
            PointRequest::cipq(
                Issuer::with_pdf(DiscPdf::new(Point::new(5.0, 9.0), 4.0)),
                RangeSpec::square(12.0),
                0.5,
                CipqStrategy::MinkowskiSum,
            )
            .with_integrator(Integrator::Grid { per_axis: 32 }),
        ];
        for request in cases {
            let mut buf = Vec::new();
            encode_point_query(&mut buf, &request).unwrap();
            let (op, payload) = frame_payload(&buf);
            assert_eq!(op, opcode::POINT_QUERY);
            let mut slot = slot_point_request();
            decode_point_query_into(payload, &mut slot).unwrap();
            assert_eq!(slot.issuer.region(), request.issuer.region());
            assert_eq!(slot.issuer.catalog(), request.issuer.catalog());
            assert_eq!(slot.range, request.range);
            assert_eq!(slot.integrator, request.integrator);
            match (slot.constraint, request.constraint) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.qp.to_bits(), b.qp.to_bits());
                    assert_eq!(a.strategy, b.strategy);
                }
                other => panic!("constraint mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn uncertain_query_round_trips() {
        let request = UncertainRequest::ciuq(
            Issuer::uniform(Rect::from_coords(1.0, 2.0, 501.0, 502.0)),
            RangeSpec::square(120.0),
            0.25,
            CiuqStrategy::PtiPExpanded,
        );
        let mut buf = Vec::new();
        encode_uncertain_query(&mut buf, &request).unwrap();
        let (op, payload) = frame_payload(&buf);
        assert_eq!(op, opcode::UNCERTAIN_QUERY);
        let mut slot = slot_uncertain_request();
        decode_uncertain_query_into(payload, &mut slot).unwrap();
        assert_eq!(slot.issuer.catalog(), request.issuer.catalog());
        assert_eq!(
            slot.constraint.unwrap().strategy,
            CiuqStrategy::PtiPExpanded
        );
    }

    #[test]
    fn decode_into_a_warm_slot_is_allocation_free_for_uniform_issuers() {
        // Not an allocator test (that's the bench gate); this pins the
        // structural property the hot path relies on — repeated decodes
        // into one slot leave the catalog storage stable.
        let request = PointRequest::ipq(
            Issuer::uniform(Rect::from_coords(10.0, 10.0, 90.0, 90.0)),
            RangeSpec::square(15.0),
        );
        let mut buf = Vec::new();
        encode_point_query(&mut buf, &request).unwrap();
        let (_, payload) = frame_payload(&buf);
        let mut slot = slot_point_request();
        decode_point_query_into(payload, &mut slot).unwrap();
        let before = slot.issuer.catalog().bounds().as_ptr();
        for _ in 0..10 {
            decode_point_query_into(payload, &mut slot).unwrap();
        }
        assert_eq!(slot.issuer.catalog().bounds().as_ptr(), before);
    }

    #[test]
    fn shared_pdfs_are_rejected_at_encode_time() {
        let request = PointRequest::ipq(
            Issuer::with_pdf(PdfKind::shared(UniformPdf::new(Rect::from_coords(
                0.0, 0.0, 1.0, 1.0,
            )))),
            RangeSpec::square(1.0),
        );
        let mut buf = Vec::new();
        assert_eq!(
            encode_point_query(&mut buf, &request),
            Err(WireError::UnsupportedPdf)
        );
        // A failed encode leaves no partial frame behind.
        assert!(buf.is_empty());
    }

    #[test]
    fn update_batch_round_trips_both_catalogs() {
        let updates = vec![
            WireUpdate::Point(Update::Arrive(PointObject::new(7u64, Point::new(1.5, 2.5)))),
            WireUpdate::Point(Update::Depart(ObjectId(9))),
            WireUpdate::Point(Update::Move(PointObject::new(7u64, Point::new(3.0, 4.0)))),
            WireUpdate::Uncertain(Update::Arrive(UncertainObject::new(
                11u64,
                UniformPdf::new(Rect::from_coords(0.0, 0.0, 8.0, 6.0)),
            ))),
            WireUpdate::Uncertain(Update::Depart(ObjectId(12))),
            WireUpdate::Uncertain(Update::Move(UncertainObject::new(
                11u64,
                TruncatedGaussianPdf::paper_default(Rect::from_coords(5.0, 5.0, 25.0, 30.0)),
            ))),
        ];
        let mut buf = Vec::new();
        encode_update_batch(&mut buf, &updates).unwrap();
        let (op, payload) = frame_payload(&buf);
        assert_eq!(op, opcode::UPDATE_BATCH);
        let mut out = Vec::new();
        decode_update_batch(payload, &mut out).unwrap();
        assert_eq!(out.len(), updates.len());
        match (&out[0], &out[3], &out[5]) {
            (
                WireUpdate::Point(Update::Arrive(p)),
                WireUpdate::Uncertain(Update::Arrive(u)),
                WireUpdate::Uncertain(Update::Move(m)),
            ) => {
                assert_eq!(p.id, ObjectId(7));
                assert_eq!(p.loc, Point::new(1.5, 2.5));
                assert_eq!(u.id, ObjectId(11));
                assert_eq!(u.region(), Rect::from_coords(0.0, 0.0, 8.0, 6.0));
                // The decoded catalog matches a locally-built object's.
                assert_eq!(
                    m.catalog(),
                    UncertainObject::new(
                        0u64,
                        TruncatedGaussianPdf::paper_default(Rect::from_coords(
                            5.0, 5.0, 25.0, 30.0
                        ))
                    )
                    .catalog()
                );
            }
            other => panic!("wrong shapes: {other:?}"),
        }
    }

    #[test]
    fn answer_round_trips_bit_identically() {
        let mut answer = QueryAnswer::default();
        for (id, p) in [(3u64, 0.125), (9, 1.0 - 1e-16), (100, f64::MIN_POSITIVE)] {
            answer.results.push(iloc_core::Match {
                id: ObjectId(id),
                probability: p,
            });
        }
        let mut buf = Vec::new();
        encode_answer(&mut buf, &answer);
        let (op, payload) = frame_payload(&buf);
        assert_eq!(op, opcode::ANSWER);
        let mut back = QueryAnswer::default();
        back.results.push(iloc_core::Match {
            id: ObjectId(0),
            probability: 0.0,
        }); // dirty slot
        decode_answer_into(payload, &mut back).unwrap();
        assert!(back.same_matches(&answer));
    }

    #[test]
    fn commit_and_ack_and_error_round_trip() {
        let mut buf = Vec::new();
        encode_commit(&mut buf, CommitTarget::Uncertain);
        let (op, payload) = frame_payload(&buf);
        assert_eq!(op, opcode::COMMIT);
        assert_eq!(decode_commit(payload).unwrap(), CommitTarget::Uncertain);

        buf.clear();
        encode_update_ack(&mut buf, 42);
        let (_, payload) = frame_payload(&buf);
        assert_eq!(decode_update_ack(payload).unwrap(), 42);

        buf.clear();
        let report = CommitReport {
            epoch: 9,
            arrivals: 1,
            departures: 2,
            moves: 3,
            missed_departures: 4,
            per_shard: vec![2, 0, 4],
            dirty: Some(Rect::from_coords(10.0, 20.0, 410.0, 220.0)),
        };
        encode_commit_done(&mut buf, &report);
        let (_, payload) = frame_payload(&buf);
        assert_eq!(decode_commit_done(payload).unwrap(), report);

        // A dirt-free report round-trips too.
        buf.clear();
        encode_commit_done(&mut buf, &CommitReport::default());
        let (_, payload) = frame_payload(&buf);
        assert_eq!(
            decode_commit_done(payload).unwrap(),
            CommitReport::default()
        );

        buf.clear();
        encode_error(&mut buf, ErrorCode::Malformed, "nope");
        let (op, payload) = frame_payload(&buf);
        assert_eq!(op, opcode::ERROR);
        assert_eq!(
            decode_error(payload).unwrap(),
            (ErrorCode::Malformed as u8, "nope".to_string())
        );
    }

    #[test]
    fn malformed_payloads_error_not_panic() {
        let mut slot = slot_point_request();
        let mut request_bytes = Vec::new();
        encode_point_query(
            &mut request_bytes,
            &PointRequest::ipq(
                Issuer::uniform(Rect::from_coords(0.0, 0.0, 10.0, 10.0)),
                RangeSpec::square(5.0),
            ),
        )
        .unwrap();
        let (_, payload) = frame_payload(&request_bytes);

        // Truncations at every prefix length fail cleanly.
        for n in 0..payload.len() {
            assert!(
                decode_point_query_into(&payload[..n], &mut slot).is_err(),
                "prefix {n} should be malformed"
            );
        }
        // Trailing garbage is rejected too.
        let mut long = payload.to_vec();
        long.push(0);
        assert_eq!(
            decode_point_query_into(&long, &mut slot),
            Err(WireError::Malformed("trailing bytes"))
        );

        // Adversarial values: NaN rect, inverted rect, zero-area
        // region, bad tags.
        let bad_pdf = |bytes: &[u8]| {
            let mut r = Reader::new(bytes);
            read_pdf(&mut r).unwrap_err()
        };
        let mut nan_rect = vec![PDF_UNIFORM];
        nan_rect.extend_from_slice(&f64::NAN.to_bits().to_le_bytes());
        nan_rect.extend_from_slice(&[0u8; 24]);
        bad_pdf(&nan_rect);

        let mut inverted = vec![PDF_UNIFORM];
        for v in [5.0f64, 5.0, 1.0, 9.0] {
            inverted.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        assert_eq!(
            bad_pdf(&inverted),
            WireError::Malformed("rect min exceeds max")
        );

        let mut flat = vec![PDF_UNIFORM];
        for v in [5.0f64, 5.0, 5.0, 9.0] {
            flat.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        assert_eq!(
            bad_pdf(&flat),
            WireError::Malformed("uniform pdf region has zero area")
        );

        assert_eq!(bad_pdf(&[9]), WireError::Malformed("unknown pdf tag"));

        // A gaussian whose mean is outside its region would assert in
        // the constructor; the decoder rejects it first.
        let mut far_mean = vec![PDF_GAUSSIAN];
        for v in [0.0f64, 0.0, 1.0, 1.0, 50.0, 50.0, 0.001, 0.001] {
            far_mean.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        assert_eq!(
            bad_pdf(&far_mean),
            WireError::Malformed("gaussian mean outside its region")
        );
    }

    #[test]
    fn subscribe_tick_and_notify_round_trip() {
        // SUBSCRIBE carries the slack and the full query body.
        let request = PointRequest::cipq(
            Issuer::uniform(Rect::from_coords(10.0, 10.0, 110.0, 110.0)),
            RangeSpec::square(40.0),
            0.25,
            CipqStrategy::MinkowskiSum,
        );
        let mut buf = Vec::new();
        encode_subscribe_point(&mut buf, 75.0, &request).unwrap();
        let (op, payload) = frame_payload(&buf);
        assert_eq!(op, opcode::SUBSCRIBE);
        let mut r = Reader::new(payload);
        let (target, slack) = decode_subscribe_header(&mut r).unwrap();
        assert_eq!(target, CommitTarget::Point);
        assert_eq!(slack, 75.0);
        let mut slot = slot_point_request();
        decode_subscribe_point_body(&mut r, &mut slot).unwrap();
        assert_eq!(slot.issuer.region(), request.issuer.region());
        assert_eq!(slot.constraint.unwrap().qp, 0.25);

        // The uncertain flavour routes by target.
        buf.clear();
        let urequest = UncertainRequest::iuq(
            Issuer::uniform(Rect::from_coords(0.0, 0.0, 50.0, 50.0)),
            RangeSpec::square(30.0),
        );
        encode_subscribe_uncertain(&mut buf, 0.0, &urequest).unwrap();
        let (_, payload) = frame_payload(&buf);
        let mut r = Reader::new(payload);
        let (target, slack) = decode_subscribe_header(&mut r).unwrap();
        assert_eq!((target, slack), (CommitTarget::Uncertain, 0.0));
        let mut slot = slot_uncertain_request();
        decode_subscribe_uncertain_body(&mut r, &mut slot).unwrap();
        assert_eq!(slot.issuer.region(), urequest.issuer.region());

        // TICK: target + id + pdf.
        buf.clear();
        let pdf = PdfKind::Uniform(UniformPdf::new(Rect::from_coords(5.0, 6.0, 25.0, 26.0)));
        encode_tick(&mut buf, CommitTarget::Point, 42, &pdf).unwrap();
        let (op, payload) = frame_payload(&buf);
        assert_eq!(op, opcode::TICK);
        let (target, sub_id, got) = decode_tick(payload).unwrap();
        assert_eq!((target, sub_id), (CommitTarget::Point, 42));
        assert_eq!(got.region(), pdf.region());

        // SUB_ACK: id + epoch + initial answer, bit-exact.
        buf.clear();
        let initial = vec![
            iloc_core::Match {
                id: ObjectId(3),
                probability: 0.125,
            },
            iloc_core::Match {
                id: ObjectId(9),
                probability: 1.0 - 1e-16,
            },
        ];
        encode_sub_ack(&mut buf, CommitTarget::Uncertain, 7, 11, 5, &initial);
        let (op, payload) = frame_payload(&buf);
        assert_eq!(op, opcode::SUB_ACK);
        let mut answer = QueryAnswer::default();
        let (target, sub_id, epoch, recovered) = decode_sub_ack_into(payload, &mut answer).unwrap();
        assert_eq!(
            (target, sub_id, epoch, recovered),
            (CommitTarget::Uncertain, 7, 11, 5)
        );
        assert_eq!(answer.results.len(), 2);
        assert_eq!(
            answer.results[1].probability.to_bits(),
            (1.0f64 - 1e-16).to_bits()
        );

        // NOTIFY: delta with upserts and removals, cause tagged.
        buf.clear();
        let delta = AnswerDelta {
            upserts: initial.clone(),
            removals: vec![ObjectId(1), ObjectId(5)],
        };
        encode_notify(
            &mut buf,
            CommitTarget::Point,
            42,
            12,
            NotifyCause::Tick,
            &delta,
        );
        let (op, payload) = frame_payload(&buf);
        assert_eq!(op, opcode::NOTIFY);
        let mut note = Notification::default();
        // Dirty slot: stale contents must be overwritten.
        note.delta.removals.push(ObjectId(999));
        decode_notify_into(payload, &mut note).unwrap();
        assert_eq!(note.target, CommitTarget::Point);
        assert_eq!((note.sub_id, note.epoch), (42, 12));
        assert_eq!(note.cause, NotifyCause::Tick);
        assert_eq!(note.delta, delta);

        // UNSUBSCRIBE / UNSUB_DONE.
        buf.clear();
        encode_unsubscribe(&mut buf, CommitTarget::Uncertain, 42);
        let (op, payload) = frame_payload(&buf);
        assert_eq!(op, opcode::UNSUBSCRIBE);
        assert_eq!(
            decode_unsubscribe(payload).unwrap(),
            (CommitTarget::Uncertain, 42)
        );
        buf.clear();
        encode_unsub_done(&mut buf, true);
        let (_, payload) = frame_payload(&buf);
        assert!(decode_unsub_done(payload).unwrap());
    }

    #[test]
    fn adversarial_subscribe_frames_are_typed_errors() {
        let request = PointRequest::ipq(
            Issuer::uniform(Rect::from_coords(0.0, 0.0, 10.0, 10.0)),
            RangeSpec::square(5.0),
        );
        // Bad slack is rejected client-side before anything is sent...
        let mut buf = Vec::new();
        for bad in [-1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(matches!(
                encode_subscribe_point(&mut buf, bad, &request),
                Err(WireError::Malformed(_))
            ));
            assert!(buf.is_empty());
        }
        // ...and server-side at the decode boundary, as a typed error
        // rather than a constructor panic.
        encode_subscribe_point(&mut buf, 10.0, &request).unwrap();
        let (_, payload) = frame_payload(&buf);
        for bad in [-1.0f64, f64::NAN, f64::INFINITY] {
            let mut forged = payload.to_vec();
            forged[1..9].copy_from_slice(&bad.to_bits().to_le_bytes());
            let mut r = Reader::new(&forged);
            assert_eq!(
                decode_subscribe_header(&mut r),
                Err(WireError::Malformed(
                    "subscription slack must be finite and >= 0"
                ))
            );
        }
        // Truncations at every prefix fail cleanly too.
        for n in 0..payload.len() {
            let mut r = Reader::new(&payload[..n]);
            let truncated = decode_subscribe_header(&mut r)
                .and_then(|_| decode_subscribe_point_body(&mut r, &mut slot_point_request()));
            assert!(truncated.is_err(), "prefix {n} should be malformed");
        }
    }

    #[test]
    fn update_batch_count_must_match_payload() {
        // Count says 100, payload holds one depart: the decoder runs
        // out of bytes rather than trusting the count.
        let mut buf = Vec::new();
        let at = begin_frame(&mut buf, opcode::UPDATE_BATCH);
        put_u32(&mut buf, 100);
        buf.push(TARGET_POINT);
        buf.push(UPDATE_DEPART);
        put_u64(&mut buf, 1);
        finish_frame(&mut buf, at);
        let (_, payload) = frame_payload(&buf);
        let mut out = Vec::new();
        assert!(decode_update_batch(payload, &mut out).is_err());
    }

    #[test]
    fn integrator_limits_are_enforced() {
        let mut bytes = vec![INTEGRATOR_MC];
        bytes.extend_from_slice(&(MAX_MC_SAMPLES + 1).to_le_bytes());
        let mut r = Reader::new(&bytes);
        assert!(read_integrator(&mut r).is_err());

        let mut bytes = vec![INTEGRATOR_GRID];
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let mut r = Reader::new(&bytes);
        assert!(read_integrator(&mut r).is_err());
    }

    #[test]
    fn hello_round_trips_and_rejects_bad_roles() {
        let mut buf = Vec::new();
        encode_hello(&mut buf, Role::Router, 0);
        let (op, payload) = frame_payload(&buf);
        assert_eq!(op, opcode::HELLO);
        assert_eq!(
            decode_hello(payload).unwrap(),
            (PROTOCOL_VERSION, Role::Router, 0)
        );
        assert_eq!(hello_peer_version(payload), Some(PROTOCOL_VERSION));

        // A HELLO from the future: unknown version still peeks, and a
        // role byte we don't know is malformed rather than a panic.
        let future = [9u8, 7, 0, 0];
        assert_eq!(hello_peer_version(&future), Some(9));
        assert_eq!(
            decode_hello(&future),
            Err(WireError::Malformed("hello role"))
        );
        assert_eq!(hello_peer_version(&[]), None);
    }

    #[test]
    fn hello_ack_round_trips() {
        let ack = HelloAck {
            role: Role::Server,
            flags: 0,
            point_epoch: 12,
            uncertain_epoch: 7,
            point_recovered: 3,
            uncertain_recovered: 0,
            point_shards: 4,
            uncertain_shards: 4,
        };
        let mut buf = Vec::new();
        encode_hello_ack(&mut buf, &ack);
        let (op, payload) = frame_payload(&buf);
        assert_eq!(op, opcode::HELLO_ACK);
        assert_eq!(decode_hello_ack(payload).unwrap(), ack);

        // Version skew inside the ack payload is rejected.
        let mut skewed = payload.to_vec();
        skewed[0] = PROTOCOL_VERSION + 1;
        assert!(decode_hello_ack(&skewed).is_err());
    }

    #[test]
    fn stats_report_from_round_trips_node_section() {
        let report = StatsReport {
            alloc_counting: true,
            allocations: 101,
            requests_served: 55,
            capacity: 128,
            event_loops: 2,
            connections: 3,
            dropped_pushes: 1,
            point: CatalogStats {
                epoch: 9,
                len: 40,
                pending: 2,
                shard_sizes: vec![10, 12, 18],
            },
            uncertain: CatalogStats {
                epoch: 4,
                len: 7,
                pending: 0,
                shard_sizes: vec![3, 4],
            },
            filter_nanos: 111,
            prune_nanos: 222,
            refine_nanos: 333,
            refine_batches: [5; REFINE_BATCH_BUCKETS],
            nodes: vec![
                NodeHealth {
                    connected: true,
                    point_epoch: 9,
                    uncertain_epoch: 4,
                    routed: 1000,
                    merged: 900,
                },
                NodeHealth {
                    connected: false,
                    point_epoch: 8,
                    uncertain_epoch: 4,
                    routed: 600,
                    merged: 550,
                },
            ],
        };
        let mut buf = Vec::new();
        encode_stats_report_from(&mut buf, &report);
        let (op, payload) = frame_payload(&buf);
        assert_eq!(op, opcode::STATS_REPORT);
        let mut back = StatsReport {
            nodes: vec![NodeHealth::default(); 5], // dirty slot
            ..StatsReport::default()
        };
        decode_stats_report_into(payload, &mut back).unwrap();
        assert_eq!(back, report);
    }
}
