//! Value-generation strategies.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating random values of one type.
///
/// Mirrors `proptest::strategy::Strategy` minus shrinking: a strategy
/// is a cloneable sampler.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { base: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.base.sample(rng))
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// A strategy that always yields clones of one value
/// (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// A type-erased strategy arm used by [`Union`] / `prop_oneof!`.
pub struct BoxedSample<V>(Rc<dyn Fn(&mut StdRng) -> V>);

impl<V> Clone for BoxedSample<V> {
    fn clone(&self) -> Self {
        BoxedSample(Rc::clone(&self.0))
    }
}

impl<V> std::fmt::Debug for BoxedSample<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedSample(..)")
    }
}

/// Erases a strategy into a [`BoxedSample`] arm.
pub fn boxed<S>(strategy: S) -> BoxedSample<S::Value>
where
    S: Strategy + 'static,
{
    BoxedSample(Rc::new(move |rng| strategy.sample(rng)))
}

/// Uniform choice between type-erased strategies (`prop_oneof!`).
#[derive(Debug)]
pub struct Union<V> {
    arms: Vec<BoxedSample<V>>,
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<V> Union<V> {
    /// Builds a union; panics when no arm is given.
    pub fn new(arms: Vec<BoxedSample<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut StdRng) -> V {
        let k = rng.gen_range(0..self.arms.len());
        (self.arms[k].0)(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let strat = (0.0..10.0f64, 1..5usize).prop_map(|(x, n)| x * n as f64);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((0.0..50.0).contains(&v));
        }
    }

    #[test]
    fn union_samples_every_arm() {
        let u = Union::new(vec![
            boxed(Just(1u32)),
            boxed(Just(2u32)),
            boxed(Just(3u32)),
        ]);
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(u.sample(&mut rng) - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
