//! A grid file (Nievergelt, Hinterberger & Sevcik, TODS'84) —
//! simplified to a uniform directory, which is sufficient for the
//! paper's use of it as an alternative filter index.
//!
//! The data space is cut into `nx × ny` equal cells; each cell lists
//! every entry whose extent overlaps it. A range query visits the cells
//! the query rectangle overlaps and dedupes the union of their lists.

use iloc_geometry::Rect;

use crate::stats::AccessStats;
use crate::traits::RangeIndex;

/// Uniform-directory grid file.
#[derive(Debug, Clone)]
pub struct GridFile<T> {
    space: Rect,
    nx: usize,
    ny: usize,
    cells: Vec<Vec<u32>>,
    entries: Vec<(Rect, T)>,
}

impl<T: Copy> GridFile<T> {
    /// Builds a grid file over `space` with an `nx × ny` directory.
    ///
    /// # Panics
    ///
    /// Panics when the directory dimensions are zero, `space` has zero
    /// area, or an entry extent falls outside `space`.
    pub fn new(space: Rect, nx: usize, ny: usize, entries: Vec<(Rect, T)>) -> Self {
        assert!(nx > 0 && ny > 0, "grid dimensions must be positive");
        assert!(space.area() > 0.0, "space must have positive area");
        let mut cells = vec![Vec::new(); nx * ny];
        for (i, (extent, _)) in entries.iter().enumerate() {
            assert!(
                space.contains_rect(*extent),
                "entry extent {extent:?} outside the grid space"
            );
            let (i0, i1, j0, j1) = cell_span(space, nx, ny, *extent);
            for j in j0..=j1 {
                for ii in i0..=i1 {
                    cells[j * nx + ii].push(i as u32);
                }
            }
        }
        GridFile {
            space,
            nx,
            ny,
            cells,
            entries,
        }
    }

    /// Directory dimensions.
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }
}

/// Inclusive cell index span overlapped by `r` (clamped into range).
fn cell_span(space: Rect, nx: usize, ny: usize, r: Rect) -> (usize, usize, usize, usize) {
    let cw = space.width() / nx as f64;
    let ch = space.height() / ny as f64;
    let clampi = |v: f64, n: usize| (v as isize).clamp(0, n as isize - 1) as usize;
    let i0 = clampi(((r.min.x - space.min.x) / cw).floor(), nx);
    let i1 = clampi(((r.max.x - space.min.x) / cw).floor(), nx);
    let j0 = clampi(((r.min.y - space.min.y) / ch).floor(), ny);
    let j1 = clampi(((r.max.y - space.min.y) / ch).floor(), ny);
    (i0, i1, j0, j1)
}

impl<T: Copy> RangeIndex<T> for GridFile<T> {
    fn len(&self) -> usize {
        self.entries.len()
    }

    fn query_range_into(&self, query: Rect, stats: &mut AccessStats, out: &mut Vec<T>) {
        if self.entries.is_empty() {
            return;
        }
        let q = query.intersect(self.space);
        if q.is_empty() {
            return;
        }
        let (i0, i1, j0, j1) = cell_span(self.space, self.nx, self.ny, q);
        let mut seen = vec![false; self.entries.len()];
        for j in j0..=j1 {
            for i in i0..=i1 {
                stats.buckets_visited += 1;
                for &e in &self.cells[j * self.nx + i] {
                    let e = e as usize;
                    if seen[e] {
                        continue;
                    }
                    seen[e] = true;
                    stats.items_tested += 1;
                    let (extent, item) = self.entries[e];
                    if extent.overlaps(query) {
                        stats.candidates += 1;
                        out.push(item);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveIndex;
    use iloc_geometry::Point;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn space() -> Rect {
        Rect::from_coords(0.0, 0.0, 100.0, 100.0)
    }

    #[test]
    fn finds_points_in_cells() {
        let entries = vec![
            (Rect::from_point(Point::new(10.0, 10.0)), 1usize),
            (Rect::from_point(Point::new(90.0, 90.0)), 2),
        ];
        let gf = GridFile::new(space(), 10, 10, entries);
        assert_eq!(gf.len(), 2);
        assert_eq!(gf.dims(), (10, 10));
        let mut stats = AccessStats::new();
        let hits = gf.query_range(Rect::from_coords(0.0, 0.0, 20.0, 20.0), &mut stats);
        assert_eq!(hits, vec![1]);
        assert!(stats.buckets_visited >= 1);
    }

    #[test]
    fn spanning_rect_not_duplicated() {
        // An extent covering many cells must be reported once.
        let entries = vec![(Rect::from_coords(5.0, 5.0, 95.0, 95.0), 7usize)];
        let gf = GridFile::new(space(), 10, 10, entries);
        let mut stats = AccessStats::new();
        let hits = gf.query_range(Rect::from_coords(0.0, 0.0, 100.0, 100.0), &mut stats);
        assert_eq!(hits, vec![7]);
        assert_eq!(stats.items_tested, 1);
    }

    #[test]
    fn matches_oracle_on_random_data() {
        let mut rng = StdRng::seed_from_u64(9);
        let entries: Vec<(Rect, usize)> = (0..800)
            .map(|k| {
                let x = rng.gen_range(0.0..95.0);
                let y = rng.gen_range(0.0..95.0);
                (
                    Rect::from_coords(
                        x,
                        y,
                        x + rng.gen_range(0.0..5.0),
                        y + rng.gen_range(0.0..5.0),
                    ),
                    k,
                )
            })
            .collect();
        let gf = GridFile::new(space(), 16, 16, entries.clone());
        let oracle = NaiveIndex::new(entries);
        for _ in 0..100 {
            let x = rng.gen_range(-10.0..110.0);
            let y = rng.gen_range(-10.0..110.0);
            let q = Rect::from_coords(x, y, x + 15.0, y + 15.0);
            let mut s1 = AccessStats::new();
            let mut s2 = AccessStats::new();
            let mut a = gf.query_range(q, &mut s1);
            let mut b = oracle.query_range(q, &mut s2);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "query {q:?}");
        }
    }

    #[test]
    fn query_outside_space_is_empty() {
        let entries = vec![(Rect::from_point(Point::new(50.0, 50.0)), 1usize)];
        let gf = GridFile::new(space(), 4, 4, entries);
        let mut stats = AccessStats::new();
        assert!(gf
            .query_range(Rect::from_coords(200.0, 200.0, 300.0, 300.0), &mut stats)
            .is_empty());
        assert_eq!(stats.buckets_visited, 0);
    }

    #[test]
    #[should_panic(expected = "outside the grid space")]
    fn rejects_out_of_space_entries() {
        let entries = vec![(Rect::from_point(Point::new(500.0, 50.0)), 1usize)];
        let _ = GridFile::new(space(), 4, 4, entries);
    }
}
