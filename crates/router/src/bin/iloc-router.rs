//! Standalone cluster router.
//!
//! ```text
//! cargo run --release -p iloc-router --bin iloc-router -- [flags]
//!
//! --addr HOST:PORT   bind address          (default 127.0.0.1:7307)
//! --node HOST:PORT   an upstream iloc-server node; repeatable, at
//!                    least one required. **Order matters**: it
//!                    defines the id-hash partition and the shard
//!                    order of merged commit reports, so every router
//!                    (and restart) must list nodes identically.
//! --event-loops N    event-loop threads    (default 2)
//! --max-connections N  downstream connection capacity (default
//!                    16,384; RLIMIT_NOFILE is raised toward it)
//! --push-backlog N   per-connection buffered-push byte budget
//!                    (default 1 MiB)
//! --upstream-timeout S  per-request read timeout toward nodes, in
//!                    seconds (default 5)
//! --connect-timeout S   deadline for dialing the whole fleet at
//!                    startup, in seconds (default 10)
//! ```
//!
//! The router registers the counting global allocator, so its STATS
//! frames report real allocation counts — the CI cluster-smoke job
//! gates on "zero steady-state allocations per routed query" exactly
//! as it does for the single-node server.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use iloc_router::{Router, RouterConfig};
use iloc_server::alloc_count::{self, CountingAllocator};

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Set by the signal handler; the main thread polls it.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

// Minimal libc-free signal registration, same contract as the server
// binary: the handler only flips an atomic flag.
extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

fn main() {
    alloc_count::mark_installed();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let number = |name: &str, default: usize| -> usize {
        value(name)
            .map(|v| v.parse().unwrap_or_else(|_| die(name)))
            .unwrap_or(default)
    };

    let addr = value("--addr").unwrap_or_else(|| "127.0.0.1:7307".to_string());
    let mut nodes: Vec<SocketAddr> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--node" {
            let Some(spec) = args.get(i + 1) else {
                die("--node");
            };
            nodes.push(spec.parse().unwrap_or_else(|_| die("--node")));
            i += 1;
        }
        i += 1;
    }
    if nodes.is_empty() {
        eprintln!("at least one --node HOST:PORT is required");
        std::process::exit(2);
    }
    let event_loops = number("--event-loops", 2);
    let max_connections = number("--max-connections", 16_384);
    let push_backlog = number("--push-backlog", 1 << 20);
    let upstream_timeout = Duration::from_secs(number("--upstream-timeout", 5) as u64);
    let connect_timeout = Duration::from_secs(number("--connect-timeout", 10) as u64);

    match iloc_server::poll::raise_nofile_limit(max_connections as u64 + 64) {
        Ok(limit) => {
            if limit < max_connections as u64 + 64 {
                eprintln!(
                    "warning: RLIMIT_NOFILE is {limit}; --max-connections {max_connections} may \
                     hit EMFILE under full load"
                );
            }
        }
        Err(e) => eprintln!("warning: could not read/raise RLIMIT_NOFILE: {e}"),
    }

    eprintln!("dialing {} cluster node(s)", nodes.len());
    let config = RouterConfig {
        addr,
        nodes,
        event_loops,
        max_connections,
        push_backlog,
        upstream_timeout,
        connect_timeout,
        ..RouterConfig::loopback(Vec::new())
    };
    let handle = Router::start(&config).unwrap_or_else(|e| {
        eprintln!("router start failed: {e}");
        std::process::exit(1);
    });

    // SAFETY contract is the C one: the handler only touches an
    // atomic flag, which is async-signal-safe.
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }

    // Announce readiness on stdout so wrappers can wait for it.
    println!("routing {} node(s)", handle.node_count());
    println!("listening on {}", handle.addr());

    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("signal received: shutting down");
    handle.shutdown();
    eprintln!("clean shutdown");
}

fn die(name: &str) -> ! {
    eprintln!("invalid value for {name}");
    std::process::exit(2);
}
