//! p-bounds (paper Section 5.1, after Cheng et al. VLDB'04 / Tao et al.
//! VLDB'05).
//!
//! The *p-bound* of an uncertain object `Oi` is the rectangle delimited
//! by four lines `li(p), ri(p), ti(p), bi(p)` such that the probability
//! of `Oi` lying on the *outside* of each line is exactly `p` (e.g. the
//! mass strictly left of `li(p)` is `p`). The `0`-bound is the
//! uncertainty region itself. p-bounds are the pre-computed metadata
//! behind every constrained-query pruning strategy and behind the PTI.

use iloc_geometry::Rect;

use crate::pdf::{Axis, LocationPdf};

/// A single pre-computed p-bound: the rectangle whose four sides each
/// cut off exactly `p` probability mass of the object's pdf.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PBound {
    /// The tail mass cut off by each side, `p ∈ [0, 0.5]`.
    pub p: f64,
    /// The bounding rectangle `[l(p), r(p)] × [b(p), t(p)]`.
    pub rect: Rect,
}

impl PBound {
    /// Computes the p-bound of `pdf` for tail mass `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p ∉ [0, 0.5]`: for `p > 0.5` the left/right (or
    /// bottom/top) cut lines would cross and the bound is undefined.
    pub fn compute(pdf: &dyn LocationPdf, p: f64) -> Self {
        assert!(
            (0.0..=0.5).contains(&p),
            "p-bound tail mass must be in [0, 0.5], got {p}"
        );
        if p == 0.0 {
            return PBound {
                p,
                rect: pdf.region(),
            };
        }
        let l = pdf.quantile(Axis::X, p);
        let r = pdf.quantile(Axis::X, 1.0 - p);
        let b = pdf.quantile(Axis::Y, p);
        let t = pdf.quantile(Axis::Y, 1.0 - p);
        PBound {
            p,
            rect: Rect::from_coords(l, b, r.max(l), t.max(b)),
        }
    }

    /// Left cut line `l(p)`.
    #[inline]
    pub fn left(&self) -> f64 {
        self.rect.min.x
    }

    /// Right cut line `r(p)`.
    #[inline]
    pub fn right(&self) -> f64 {
        self.rect.max.x
    }

    /// Bottom cut line `b(p)`.
    #[inline]
    pub fn bottom(&self) -> f64 {
        self.rect.min.y
    }

    /// Top cut line `t(p)`.
    #[inline]
    pub fn top(&self) -> f64 {
        self.rect.max.y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::TruncatedGaussianPdf;
    use crate::uniform::UniformPdf;
    use iloc_geometry::{Interval, Point};

    #[test]
    fn zero_bound_is_the_region() {
        let pdf = UniformPdf::new(Rect::from_coords(0.0, 0.0, 10.0, 10.0));
        let b = PBound::compute(&pdf, 0.0);
        assert_eq!(b.rect, pdf.region());
    }

    #[test]
    fn uniform_pbound_is_linear_shrink() {
        let pdf = UniformPdf::new(Rect::from_coords(0.0, 0.0, 10.0, 20.0));
        let b = PBound::compute(&pdf, 0.25);
        assert!((b.left() - 2.5).abs() < 1e-9);
        assert!((b.right() - 7.5).abs() < 1e-9);
        assert!((b.bottom() - 5.0).abs() < 1e-9);
        assert!((b.top() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn tail_masses_are_exactly_p() {
        let pdf = TruncatedGaussianPdf::paper_default(Rect::from_coords(0.0, 0.0, 12.0, 12.0));
        for &p in &[0.1, 0.3, 0.5] {
            let b = PBound::compute(&pdf, p);
            // Mass strictly left of l(p) is p.
            let left_mass = pdf.marginal_prob(Axis::X, Interval::new(0.0, b.left()));
            let right_mass = pdf.marginal_prob(Axis::X, Interval::new(b.right(), 12.0));
            assert!((left_mass - p).abs() < 1e-6, "p={p} left={left_mass}");
            assert!((right_mass - p).abs() < 1e-6, "p={p} right={right_mass}");
        }
    }

    #[test]
    fn half_bound_collapses_to_median_lines() {
        let pdf = UniformPdf::new(Rect::from_coords(0.0, 0.0, 10.0, 10.0));
        let b = PBound::compute(&pdf, 0.5);
        assert!((b.left() - b.right()).abs() < 1e-9);
        assert!((b.rect.center().x - 5.0).abs() < 1e-9);
    }

    #[test]
    fn bounds_nest_monotonically() {
        let pdf = TruncatedGaussianPdf::paper_default(Rect::from_coords(-4.0, -4.0, 4.0, 4.0));
        let mut prev = PBound::compute(&pdf, 0.0).rect;
        for k in 1..=5 {
            let cur = PBound::compute(&pdf, k as f64 / 10.0).rect;
            assert!(prev.contains_rect(cur), "p={} not nested", k as f64 / 10.0);
            prev = cur;
        }
    }

    #[test]
    #[should_panic(expected = "tail mass")]
    fn rejects_p_above_half() {
        let pdf = UniformPdf::new(Rect::from_coords(0.0, 0.0, 1.0, 1.0));
        let _ = PBound::compute(&pdf, 0.6);
    }

    #[test]
    fn gaussian_pbound_tighter_than_uniform() {
        // A Gaussian concentrates mass centrally, so its p-bound is
        // strictly inside the uniform one for the same region.
        let region = Rect::centered(Point::new(0.0, 0.0), 6.0, 6.0);
        let g = TruncatedGaussianPdf::paper_default(region);
        let u = UniformPdf::new(region);
        let bg = PBound::compute(&g, 0.2).rect;
        let bu = PBound::compute(&u, 0.2).rect;
        assert!(bu.contains_rect(bg));
        assert!(bg.area() < bu.area());
    }
}
