//! Query–data duality (paper Section 4.2, Lemmas 2–4).
//!
//! **Lemma 2** (duality): point `Si` satisfies the range query centred
//! at `Sq` iff `Sq` satisfies the same-shaped query centred at `Si`.
//!
//! **Lemma 3**: therefore the IPQ probability of a point object is
//! `∫_{R(xi,yi) ∩ U0} f0` — one rectangle-mass lookup against the
//! *issuer's* pdf instead of an integral that re-forms a query at every
//! point of `U0`. For a uniform issuer this is the area ratio of
//! Eq. 6.
//!
//! **Lemma 4**: for uncertain objects, treating every point of `Ui` as
//! a dual point object gives
//! `pi = ∫_{Ui ∩ (R ⊕ U0)} fi(x,y) · Q(x,y) dx dy`, where the domain is
//! legitimately clipped to the expanded query because `Q` vanishes
//! outside it (Lemma 1).
//!
//! The functions here are the lemma-level API; the [`crate::integrate`]
//! module supplies the interchangeable numerical backends.

use iloc_geometry::{Point, Rect};
use iloc_uncertainty::LocationPdf;

use crate::query::RangeSpec;

/// Lemma 2 predicate: does the point at `object` satisfy a range query
/// of shape `range` centred at `issuer_pos`?
///
/// Exposed so tests (and the property suite) can check the duality
/// symmetry directly.
#[inline]
pub fn satisfies(issuer_pos: Point, object: Point, range: RangeSpec) -> bool {
    range.at(issuer_pos).contains_point(object)
}

/// Lemma 3: exact IPQ qualification probability of the point object at
/// `loc`, for **any** issuer pdf, as the issuer-pdf mass of the dual
/// query rectangle `R(loc)`.
#[inline]
pub fn point_probability(issuer_pdf: &dyn LocationPdf, range: RangeSpec, loc: Point) -> f64 {
    issuer_pdf.prob_in_rect(range.at(loc))
}

/// `Q(x, y)` of Lemma 4: the qualification probability of the *point*
/// `(x, y)` — the inner factor of the IUQ integral.
#[inline]
pub fn q_factor(issuer_pdf: &dyn LocationPdf, range: RangeSpec, p: Point) -> f64 {
    issuer_pdf.prob_in_rect(range.at(p))
}

/// Lemma 1 corollary used by Lemma 4: `Q` vanishes outside `R ⊕ U0`.
#[inline]
pub fn q_vanishes_outside(expanded: Rect, p: Point) -> bool {
    !expanded.contains_point(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc_geometry::minkowski::expand_query;
    use iloc_uncertainty::UniformPdf;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn lemma2_symmetry_on_random_pairs() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..10_000 {
            let a = Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0));
            let b = Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0));
            let range = RangeSpec::new(rng.gen_range(0.0..30.0), rng.gen_range(0.0..30.0));
            assert_eq!(
                satisfies(a, b, range),
                satisfies(b, a, range),
                "duality violated for {a} / {b}"
            );
        }
    }

    #[test]
    fn lemma3_equals_eq2_brute_force() {
        // Compare the one-lookup dual form with a dense evaluation of
        // the original Eq. 2 integral.
        let issuer = UniformPdf::new(Rect::from_coords(10.0, 10.0, 60.0, 40.0));
        let range = RangeSpec::new(12.0, 8.0);
        let loc = Point::new(65.0, 25.0);
        let dual = point_probability(&issuer, range, loc);

        let n = 600;
        let u0 = issuer.region();
        let (dx, dy) = (u0.width() / n as f64, u0.height() / n as f64);
        let mut acc = 0.0;
        for j in 0..n {
            for i in 0..n {
                let c = Point::new(
                    u0.min.x + (i as f64 + 0.5) * dx,
                    u0.min.y + (j as f64 + 0.5) * dy,
                );
                if satisfies(c, loc, range) {
                    acc += issuer.density(c) * dx * dy;
                }
            }
        }
        assert!((dual - acc).abs() < 1e-3, "dual {dual} vs eq2 {acc}");
    }

    #[test]
    fn eq6_area_ratio_for_uniform_issuer() {
        // Eq. 6: pi = Area(R(xi,yi) ∩ U0) / Area(U0).
        let u0 = Rect::from_coords(0.0, 0.0, 20.0, 20.0);
        let issuer = UniformPdf::new(u0);
        let range = RangeSpec::square(10.0);
        let loc = Point::new(25.0, 10.0);
        let p = point_probability(&issuer, range, loc);
        let expect = range.at(loc).intersection_area(u0) / u0.area();
        assert!((p - expect).abs() < 1e-12);
        // This particular geometry: R(loc) = [15,35]×[0,20] → overlap
        // 5×20 of 400 = 0.25.
        assert!((p - 0.25).abs() < 1e-12);
    }

    #[test]
    fn q_vanishes_outside_expanded_query() {
        let issuer = UniformPdf::new(Rect::from_coords(0.0, 0.0, 10.0, 10.0));
        let range = RangeSpec::square(5.0);
        let expanded = expand_query(issuer.region(), range.w, range.h);
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..2_000 {
            let p = Point::new(rng.gen_range(-40.0..50.0), rng.gen_range(-40.0..50.0));
            if q_vanishes_outside(expanded, p) {
                assert_eq!(
                    q_factor(&issuer, range, p),
                    0.0,
                    "Q must vanish outside R ⊕ U0 at {p}"
                );
            }
        }
    }
}
