//! Criterion microbenchmark for Figure 10: IUQ response time across
//! issuer sizes `u` and range sizes `w`.

use criterion::{criterion_group, criterion_main, Criterion};
use iloc_bench::{Scale, TestBed};
use iloc_core::{Issuer, RangeSpec};
use iloc_datagen::WorkloadGen;

fn bench(c: &mut Criterion) {
    let bed = TestBed::build(Scale::quick());
    let mut group = c.benchmark_group("fig10");
    for w in [500.0, 1000.0, 1500.0] {
        for u in [250.0, 1000.0] {
            let issuer = Issuer::uniform(WorkloadGen::new(10).issuer_region(u));
            group.bench_function(format!("iuq/w{w}/u{u}"), |b| {
                b.iter(|| bed.long_beach.iuq(&issuer, RangeSpec::square(w)))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
