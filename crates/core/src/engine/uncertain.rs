//! Engine for uncertain-object databases (IUQ / C-IUQ) — a thin facade
//! over [`crate::pipeline::QueryPipeline`]: it owns the object table,
//! the R-tree and the PTI, and assembles one pipeline per query.

use std::collections::HashMap;

use iloc_index::{Pti, PtiParams, PtiQuery, RTree, RTreeParams, RangeIndex};
use iloc_uncertainty::{ObjectId, UncertainObject};

use crate::eval::constrained::PruneContext;
use crate::expand::p_expanded_query;
use crate::integrate::Integrator;
use crate::pipeline::{
    execute_batch, AcceptPolicy, BatchEngine, EvaluatorKind, ExecutionContext, PreparedQuery,
    PruneChain, PtiFilter, QueryPipeline, RectFilter, UncertainRequest,
};
use crate::query::{CiuqStrategy, Issuer, RangeSpec};
use crate::result::QueryAnswer;

/// An uncertain-object database with both a plain R-tree and a PTI,
/// answering IUQ and C-IUQ.
///
/// Object ids are expected to be unique within one engine (the
/// serving layer routes updates by id).
#[derive(Debug, Clone)]
pub struct UncertainEngine {
    objects: Vec<UncertainObject>,
    tree: RTree<u32>,
    pti: Pti<u32>,
    /// Id → object-table slot, maintained by every insert/remove so
    /// departures resolve in O(1).
    slots: HashMap<ObjectId, u32>,
}

impl UncertainEngine {
    /// Builds the engine: bulk loads an R-tree on the uncertainty
    /// regions and a PTI on the objects' U-catalogs.
    ///
    /// # Panics
    ///
    /// Panics when objects disagree on their catalog levels (the PTI
    /// requires a shared level table, as in the paper).
    pub fn build(objects: Vec<UncertainObject>) -> Self {
        let entries = objects
            .iter()
            .enumerate()
            .map(|(k, o)| (o.region(), k as u32))
            .collect();
        let tree = RTree::bulk_load(entries, RTreeParams::default());

        let levels: Vec<f64> = objects
            .first()
            .map(|o| o.catalog().levels().collect())
            .unwrap_or_else(|| vec![0.0]);
        let pti_objects = objects
            .iter()
            .enumerate()
            .map(|(k, o)| {
                let obj_levels: Vec<f64> = o.catalog().levels().collect();
                assert_eq!(
                    obj_levels, levels,
                    "all objects must share the same catalog levels"
                );
                let bounds = o.catalog().bounds().iter().map(|b| b.rect).collect();
                (bounds, k as u32)
            })
            .collect();
        let pti = Pti::bulk_load(levels, pti_objects, PtiParams::default());

        let slots = objects
            .iter()
            .enumerate()
            .map(|(k, o)| (o.id, k as u32))
            .collect();
        UncertainEngine {
            objects,
            tree,
            pti,
            slots,
        }
    }

    /// Inserts one uncertain object dynamically, maintaining both the
    /// R-tree and the PTI. **Upsert**: when the id is already live,
    /// the existing object is replaced — a retried or duplicate
    /// arrival must not leave an unremovable orphan behind a stale
    /// id→slot mapping.
    ///
    /// # Panics
    ///
    /// Panics when the object's catalog levels differ from the
    /// engine's (the PTI needs one shared level table).
    pub fn insert(&mut self, object: UncertainObject) {
        if self.slots.contains_key(&object.id) {
            self.remove(object.id);
        }
        let obj_levels: Vec<f64> = object.catalog().levels().collect();
        if self.objects.is_empty() {
            // First object fixes the level table.
            self.pti = Pti::bulk_load(obj_levels.clone(), Vec::new(), PtiParams::default());
        }
        let engine_levels: Vec<f64> = self.pti.levels().to_vec();
        assert_eq!(
            obj_levels, engine_levels,
            "all objects must share the same catalog levels"
        );
        let idx = self.objects.len() as u32;
        self.slots.insert(object.id, idx);
        self.tree.insert(object.region(), idx);
        self.pti.insert(
            object.catalog().bounds().iter().map(|b| b.rect).collect(),
            idx,
        );
        self.objects.push(object);
    }

    /// Removes the object with the given id, maintaining **both**
    /// indexes incrementally — Guttman condense-tree on the R-tree and
    /// constrained-rectangle repair on the PTI; returns `true` when
    /// present.
    ///
    /// The object table is kept dense: the last object is swapped into
    /// the vacated slot and both index entries are re-keyed.
    pub fn remove(&mut self, id: iloc_uncertainty::ObjectId) -> bool {
        let Some(slot_u32) = self.slots.remove(&id) else {
            return false;
        };
        let slot = slot_u32 as usize;
        let region = self.objects[slot].region();
        let tree_removed = self.tree.remove(region, slot_u32);
        let pti_removed = self.pti.remove(region, slot_u32);
        assert!(
            tree_removed && pti_removed,
            "object table and indexes out of sync"
        );
        let last = self.objects.len() - 1;
        if slot != last {
            let moved_region = self.objects[last].region();
            let tree_rekeyed = self.tree.remove(moved_region, last as u32);
            let pti_rekeyed = self.pti.remove(moved_region, last as u32);
            assert!(
                tree_rekeyed && pti_rekeyed,
                "object table and indexes out of sync"
            );
            self.tree.insert(moved_region, slot_u32);
            self.pti.insert(
                self.objects[last]
                    .catalog()
                    .bounds()
                    .iter()
                    .map(|b| b.rect)
                    .collect(),
                slot_u32,
            );
            self.slots.insert(self.objects[last].id, slot_u32);
        }
        self.objects.swap_remove(slot);
        true
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` when the database is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// The stored objects.
    pub fn objects(&self) -> &[UncertainObject] {
        &self.objects
    }

    /// Looks up the live object with this id in O(1), if present (the
    /// serving layer uses this to compute a commit's dirty region from
    /// the *pre-update* regions of departing and moving objects).
    pub fn find(&self, id: ObjectId) -> Option<&UncertainObject> {
        self.slots
            .get(&id)
            .map(|&slot| &self.objects[slot as usize])
    }

    /// Allocation-free variant of [`Self::raw_candidates`]: candidates
    /// are pushed into `out`, the probe's DFS runs on `scratch`.
    pub fn raw_candidates_scratch(
        &self,
        filter: iloc_geometry::Rect,
        stats: &mut iloc_index::AccessStats,
        scratch: &mut iloc_index::TraversalScratch,
        out: &mut Vec<u32>,
    ) {
        self.tree.query_range_scratch(filter, stats, scratch, out);
    }

    /// Raw R-tree filter results — indices into [`Self::objects`] whose
    /// regions overlap `filter`. Exposed for harness-level ablations
    /// that assemble their own refinement pipelines.
    pub fn raw_candidates(
        &self,
        filter: iloc_geometry::Rect,
        stats: &mut iloc_index::AccessStats,
    ) -> Vec<u32> {
        self.tree.query_range(filter, stats)
    }

    /// Assembles and runs one R-tree-filtered pipeline through the
    /// caller's context (the Minkowski plans share this; the PTI plan
    /// builds its own filter + pruning chain in [`Self::ciuq_into`]).
    fn run_rtree_into(
        &self,
        query: PreparedQuery<'_>,
        refine: EvaluatorKind,
        accept: AcceptPolicy,
        ctx: &mut ExecutionContext,
        answer: &mut QueryAnswer,
    ) {
        QueryPipeline {
            query,
            objects: &self.objects,
            filter: RectFilter {
                index: &self.tree,
                query: query.expanded,
            },
            prune: PruneChain::none(),
            refine,
            accept,
        }
        .execute_into(ctx, answer)
    }

    /// One-shot wrapper over [`Self::run_rtree_into`].
    fn run_rtree(
        &self,
        query: PreparedQuery<'_>,
        refine: EvaluatorKind,
        accept: AcceptPolicy,
        integrator: Integrator,
    ) -> QueryAnswer {
        let mut answer = QueryAnswer::default();
        self.run_rtree_into(
            query,
            refine,
            accept,
            &mut ExecutionContext::new(integrator),
            &mut answer,
        );
        answer
    }

    /// **IUQ** (Definition 4) via the enhanced pipeline: Minkowski
    /// filter + Lemma 4 refinement with the best available integrator.
    pub fn iuq(&self, issuer: &Issuer, range: RangeSpec) -> QueryAnswer {
        self.iuq_with(issuer, range, Integrator::Auto)
    }

    /// IUQ with an explicit integrator.
    pub fn iuq_with(
        &self,
        issuer: &Issuer,
        range: RangeSpec,
        integrator: Integrator,
    ) -> QueryAnswer {
        let query = PreparedQuery::new(issuer, range);
        self.run_rtree(
            query,
            EvaluatorKind::Duality,
            AcceptPolicy::Positive,
            integrator,
        )
    }

    /// IUQ via the **basic method** (Section 3.3, Eq. 4): numerical
    /// integration over the issuer region for every candidate — the
    /// slow baseline of Figure 8.
    pub fn iuq_basic(&self, issuer: &Issuer, range: RangeSpec, per_axis: usize) -> QueryAnswer {
        let query = PreparedQuery::new(issuer, range);
        self.run_rtree(
            query,
            EvaluatorKind::Basic { per_axis },
            AcceptPolicy::Positive,
            Integrator::Auto,
        )
    }

    /// **C-IUQ** (Definition 6): objects with `pi ≥ qp`, with the index
    /// and pruning stack chosen by `strategy` (Figure 12 compares the
    /// two).
    pub fn ciuq(
        &self,
        issuer: &Issuer,
        range: RangeSpec,
        qp: f64,
        strategy: CiuqStrategy,
    ) -> QueryAnswer {
        self.ciuq_with(issuer, range, qp, strategy, Integrator::Auto)
    }

    /// C-IUQ with an explicit integrator.
    pub fn ciuq_with(
        &self,
        issuer: &Issuer,
        range: RangeSpec,
        qp: f64,
        strategy: CiuqStrategy,
        integrator: Integrator,
    ) -> QueryAnswer {
        let mut answer = QueryAnswer::default();
        self.ciuq_into(
            issuer,
            range,
            qp,
            strategy,
            &mut ExecutionContext::new(integrator),
            &mut answer,
        );
        answer
    }

    /// C-IUQ through the caller's context (prepared by the caller; the
    /// pipeline resets it per execution).
    fn ciuq_into(
        &self,
        issuer: &Issuer,
        range: RangeSpec,
        qp: f64,
        strategy: CiuqStrategy,
        ctx: &mut ExecutionContext,
        answer: &mut QueryAnswer,
    ) {
        assert!((0.0..=1.0).contains(&qp), "threshold must be in [0, 1]");
        let query = PreparedQuery::new(issuer, range);
        match strategy {
            // The paper's baseline: plain R-tree + Minkowski filter,
            // no pruning — every candidate is refined.
            CiuqStrategy::RTreeMinkowski => self.run_rtree_into(
                query,
                EvaluatorKind::Duality,
                AcceptPolicy::AtLeast(qp),
                ctx,
                answer,
            ),
            // PTI filter + the Section 5.2 object-level pruning chain.
            // At `qp = 0` no object can ever be pruned (every test
            // bounds `pi` by a positive level), so the chain is empty.
            CiuqStrategy::PtiPExpanded => {
                let (_, p_expanded) = p_expanded_query(issuer, range, qp);
                let prune = if qp > 0.0 {
                    PruneChain::section_5_2(PruneContext {
                        qp,
                        expanded: query.expanded,
                        p_expanded,
                        issuer,
                        range,
                    })
                } else {
                    PruneChain::none()
                };
                QueryPipeline {
                    query,
                    objects: &self.objects,
                    filter: PtiFilter {
                        index: &self.pti,
                        query: PtiQuery {
                            expanded: query.expanded,
                            p_expanded,
                            threshold: qp,
                        },
                    },
                    prune,
                    refine: EvaluatorKind::Duality,
                    accept: AcceptPolicy::AtLeast(qp),
                }
                .execute_into(ctx, answer)
            }
        }
    }

    /// Answers a request slice in parallel on all cores; answers are
    /// bit-identical to issuing each request sequentially.
    pub fn execute_batch(&self, requests: &[UncertainRequest]) -> Vec<QueryAnswer> {
        execute_batch(self, requests)
    }
}

impl BatchEngine for UncertainEngine {
    type Request = UncertainRequest;

    fn execute_one_into(
        &self,
        request: &UncertainRequest,
        ctx: &mut ExecutionContext,
        answer: &mut QueryAnswer,
    ) {
        ctx.prepare(request.integrator);
        match request.constraint {
            None => {
                let query = PreparedQuery::new(&request.issuer, request.range);
                self.run_rtree_into(
                    query,
                    EvaluatorKind::Duality,
                    AcceptPolicy::Positive,
                    ctx,
                    answer,
                )
            }
            Some(c) => self.ciuq_into(
                &request.issuer,
                request.range,
                c.qp,
                c.strategy,
                ctx,
                answer,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::minkowski_query;
    use iloc_geometry::{Point, Rect};
    use iloc_uncertainty::UniformPdf;

    fn grid_objects() -> Vec<UncertainObject> {
        // 15×15 uncertain objects with 30×30 regions spaced 70 apart.
        let mut objs = Vec::new();
        let mut id = 0u64;
        for i in 0..15 {
            for j in 0..15 {
                let c = Point::new(50.0 + i as f64 * 70.0, 50.0 + j as f64 * 70.0);
                objs.push(UncertainObject::new(
                    id,
                    UniformPdf::new(Rect::centered(c, 15.0, 15.0)),
                ));
                id += 1;
            }
        }
        objs
    }

    fn issuer() -> Issuer {
        Issuer::uniform(Rect::from_coords(450.0, 450.0, 550.0, 550.0))
    }

    #[test]
    fn iuq_probabilities_in_unit_interval_and_positive() {
        let engine = UncertainEngine::build(grid_objects());
        let ans = engine.iuq(&issuer(), RangeSpec::square(100.0));
        assert!(!ans.results.is_empty());
        for m in &ans.results {
            assert!(m.probability > 0.0 && m.probability <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn iuq_matches_exhaustive_lemma4() {
        let engine = UncertainEngine::build(grid_objects());
        let iss = issuer();
        let range = RangeSpec::square(120.0);
        let expanded = minkowski_query(&iss, range);
        let ans = engine.iuq(&iss, range);
        for obj in engine.objects() {
            let pi = crate::integrate::closed::uniform_uniform(
                iss.region(),
                obj.region(),
                range,
                expanded,
            );
            match ans.probability_of(obj.id) {
                Some(got) => assert!((got - pi).abs() < 1e-12),
                None => assert!(pi <= 1e-12, "missing object with pi={pi}"),
            }
        }
    }

    #[test]
    fn basic_method_converges_to_enhanced() {
        let engine = UncertainEngine::build(grid_objects());
        let iss = issuer();
        let range = RangeSpec::square(100.0);
        let fast = engine.iuq(&iss, range);
        let slow = engine.iuq_basic(&iss, range, 80);
        assert_eq!(fast.results.len(), slow.results.len());
        for (a, b) in fast.results.iter().zip(&slow.results) {
            assert_eq!(a.id, b.id);
            assert!(
                (a.probability - b.probability).abs() < 5e-3,
                "{} vs {}",
                a.probability,
                b.probability
            );
        }
    }

    #[test]
    fn ciuq_strategies_return_identical_answers() {
        let engine = UncertainEngine::build(grid_objects());
        let iss = issuer();
        let range = RangeSpec::square(120.0);
        for &qp in &[0.0, 0.1, 0.25, 0.4, 0.6, 0.9] {
            let a = engine.ciuq(&iss, range, qp, CiuqStrategy::RTreeMinkowski);
            let b = engine.ciuq(&iss, range, qp, CiuqStrategy::PtiPExpanded);
            let ids_a: Vec<_> = a.results.iter().map(|m| m.id).collect();
            let ids_b: Vec<_> = b.results.iter().map(|m| m.id).collect();
            assert_eq!(ids_a, ids_b, "qp={qp}");
            for m in &a.results {
                assert!(m.probability >= qp && m.probability > 0.0);
            }
            // The PTI pipeline must do no more probability evaluations.
            assert!(b.stats.prob_evals <= a.stats.prob_evals, "qp={qp}");
        }
    }

    #[test]
    fn ciuq_pti_pruning_reduces_work_at_high_thresholds() {
        let engine = UncertainEngine::build(grid_objects());
        let iss = issuer();
        let range = RangeSpec::square(150.0);
        let base = engine.ciuq(&iss, range, 0.0, CiuqStrategy::PtiPExpanded);
        let tight = engine.ciuq(&iss, range, 0.5, CiuqStrategy::PtiPExpanded);
        assert!(tight.stats.prob_evals <= base.stats.prob_evals);
        assert!(
            tight.stats.access.candidates <= base.stats.access.candidates,
            "{} vs {}",
            tight.stats.access.candidates,
            base.stats.access.candidates
        );
    }

    #[test]
    fn empty_engine() {
        let engine = UncertainEngine::build(Vec::new());
        assert!(engine.is_empty());
        let ans = engine.iuq(&issuer(), RangeSpec::square(10.0));
        assert!(ans.results.is_empty());
    }

    #[test]
    fn insert_upserts_live_ids() {
        use iloc_uncertainty::ObjectId;
        let mut engine = UncertainEngine::build(grid_objects());
        let n = engine.len();
        // A duplicate arrival replaces the live object in the table,
        // the R-tree and the PTI.
        engine.insert(UncertainObject::new(
            0u64,
            UniformPdf::new(Rect::centered(Point::new(500.0, 500.0), 10.0, 10.0)),
        ));
        assert_eq!(engine.len(), n);
        let ans = engine.iuq(&issuer(), RangeSpec::square(60.0));
        assert!(ans.probability_of(ObjectId(0)).is_some());
        // No orphan: the id is fully gone after one removal.
        assert!(engine.remove(ObjectId(0)));
        assert!(!engine.remove(ObjectId(0)));
        assert_eq!(engine.len(), n - 1);
    }

    #[test]
    fn dynamic_inserts_equal_bulk_build() {
        let objs = grid_objects();
        let bulk = UncertainEngine::build(objs.clone());
        let mut dynamic = UncertainEngine::build(Vec::new());
        for o in objs {
            dynamic.insert(o);
        }
        assert_eq!(dynamic.len(), bulk.len());
        let iss = issuer();
        let range = RangeSpec::square(150.0);
        for &qp in &[0.0, 0.3, 0.6] {
            let a = bulk.ciuq(&iss, range, qp, CiuqStrategy::PtiPExpanded);
            let b = dynamic.ciuq(&iss, range, qp, CiuqStrategy::PtiPExpanded);
            let ids_a: Vec<_> = a.results.iter().map(|m| m.id).collect();
            let ids_b: Vec<_> = b.results.iter().map(|m| m.id).collect();
            assert_eq!(ids_a, ids_b, "qp={qp}");
        }
    }
}
