//! Delta-oracle property suite for the subscription subsystem.
//!
//! The contract under test: after **any** interleaving of commits,
//! pumps and ticks, applying every emitted [`AnswerDelta`] in order to
//! a subscriber's local copy reproduces the answer a **full fresh
//! re-evaluation** of that subscription would give — bit-identically
//! ([`QueryAnswer::same_matches`] semantics), for every subscription,
//! including the ones the wake-up machinery decided *not* to touch.
//! Plus: steady ticks probe nothing, dirty buffers reused across
//! scenarios carry no state, and commits racing ahead of pumps never
//! corrupt a delta stream.

use iloc::core::pipeline::PointRequest;
use iloc::core::serve::{ShardedEngine, Update};
use iloc::core::subscribe::{AnswerDelta, SubId, SubscriptionRegistry};
use iloc::core::{CipqStrategy, Issuer, Match, PointEngine, RangeSpec};
use iloc::geometry::{Point, Rect};
use iloc::uncertainty::{ObjectId, PointObject, UncertainObject, UniformPdf};

/// Deterministic xorshift for scenario generation.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn coord(&mut self) -> f64 {
        self.below(1_000) as f64
    }
}

fn grid_engine(shards: usize) -> ShardedEngine<PointEngine> {
    let objects = (0..400u64)
        .map(|k| {
            PointObject::new(
                k,
                Point::new((k % 20) as f64 * 50.0, (k / 20) as f64 * 50.0),
            )
        })
        .collect();
    ShardedEngine::build(objects, shards)
}

fn request_at(x: f64, y: f64, constrained: bool) -> PointRequest {
    let issuer = Issuer::uniform(Rect::centered(Point::new(x, y), 45.0, 45.0));
    if constrained {
        PointRequest::cipq(
            issuer,
            RangeSpec::square(70.0),
            0.2,
            CipqStrategy::MinkowskiSum,
        )
    } else {
        PointRequest::ipq(issuer, RangeSpec::square(70.0))
    }
}

/// A subscriber's client-side view: the request mirror (for fresh
/// re-evaluation) and the composed answer state.
struct Mirror {
    id: SubId,
    request: PointRequest,
    state: Vec<Match>,
}

fn assert_state_fresh(engine: &ShardedEngine<PointEngine>, mirror: &Mirror) {
    let fresh = engine.snapshot().execute_one(&mirror.request);
    assert_eq!(
        mirror.state.len(),
        fresh.results.len(),
        "sub {}: {} composed vs {} fresh matches",
        mirror.id,
        mirror.state.len(),
        fresh.results.len()
    );
    for (a, b) in mirror.state.iter().zip(&fresh.results) {
        assert_eq!(a.id, b.id, "sub {}", mirror.id);
        assert_eq!(
            a.probability.to_bits(),
            b.probability.to_bits(),
            "sub {}: probability for {:?} diverged",
            mirror.id,
            a.id
        );
    }
}

/// The main oracle: random churn + motion, every delta applied, every
/// subscription compared against full fresh re-evaluation after every
/// commit — across shard counts, through one registry whose scratch
/// buffers stay dirty the whole way.
#[test]
fn deltas_compose_to_fresh_reevaluation_under_churn_and_motion() {
    for &shards in &[1usize, 3, 8] {
        let engine = grid_engine(shards);
        let mut registry: SubscriptionRegistry<PointEngine> = SubscriptionRegistry::new();
        let mut rng = Rng(0x1005_0C1E + shards as u64);

        let mut mirrors: Vec<Mirror> = (0..12)
            .map(|k| {
                let request = request_at(rng.coord(), rng.coord(), k % 3 == 0);
                let id = registry.subscribe(&engine, request.clone(), 60.0 + (k % 4) as f64 * 40.0);
                let state = registry.get(id).unwrap().last_answer().to_vec();
                Mirror { id, request, state }
            })
            .collect();
        for mirror in &mirrors {
            assert_state_fresh(&engine, mirror);
        }

        let mut next_arrival = 10_000u64;
        for round in 0..25 {
            // A random batch of catalog churn...
            for _ in 0..8 {
                match rng.below(3) {
                    0 => {
                        engine.submit(Update::Arrive(PointObject::new(
                            next_arrival,
                            Point::new(rng.coord(), rng.coord()),
                        )));
                        next_arrival += 1;
                    }
                    1 => {
                        engine.submit(Update::Depart(ObjectId(rng.below(next_arrival))));
                    }
                    _ => {
                        engine.submit(Update::Move(PointObject::new(
                            rng.below(400),
                            Point::new(rng.coord(), rng.coord()),
                        )));
                    }
                }
            }
            engine.commit();

            // ...pumped into deltas, applied in emission order...
            registry.pump(&engine, |id, _, delta| {
                let mirror = mirrors.iter_mut().find(|m| m.id == id).expect("known sub");
                delta.apply(&mut mirror.state);
            });

            // ...then some issuers move (half the ticks drift inside
            // the envelope, half jump past it).
            for mirror in mirrors.iter_mut() {
                if rng.below(2) == 0 {
                    continue;
                }
                let (x, y) = if rng.below(2) == 0 {
                    let r = mirror.request.issuer.region().center();
                    (r.x + 5.0, r.y)
                } else {
                    (rng.coord(), rng.coord())
                };
                let fresh_issuer = request_at(x, y, false).issuer;
                mirror.request.issuer = fresh_issuer.clone();
                let (_, delta) = registry
                    .tick(&engine, mirror.id, fresh_issuer.pdf().clone())
                    .expect("live sub");
                delta.apply(&mut mirror.state);
            }

            // EVERY subscription — woken, ticked, or untouched — must
            // now equal full fresh re-evaluation at the current epoch.
            for mirror in &mirrors {
                assert_state_fresh(&engine, mirror);
            }

            // Occasionally churn the subscription set itself.
            if round % 7 == 6 {
                let gone = mirrors.remove(rng.below(mirrors.len() as u64) as usize);
                assert!(registry.unsubscribe(gone.id));
                let request = request_at(rng.coord(), rng.coord(), true);
                let id = registry.subscribe(&engine, request.clone(), 80.0);
                let state = registry.get(id).unwrap().last_answer().to_vec();
                mirrors.push(Mirror { id, request, state });
            }
        }
    }
}

/// A commit can land between a pump and a tick (the wire path pumps
/// before each frame, but the writer thread runs concurrently). The
/// tick must still answer consistently, and the next pump must
/// reconcile every subscription without emitting a corrupt delta.
#[test]
fn commits_racing_between_pump_and_tick_stay_consistent() {
    let engine = grid_engine(4);
    let mut registry: SubscriptionRegistry<PointEngine> = SubscriptionRegistry::new();

    // One sub near the churn, one far from it.
    let near_request = request_at(100.0, 100.0, false);
    let far_request = request_at(900.0, 900.0, false);
    let near = registry.subscribe(&engine, near_request.clone(), 60.0);
    let far = registry.subscribe(&engine, far_request.clone(), 60.0);
    let mut near_state = registry.get(near).unwrap().last_answer().to_vec();
    let mut far_state = registry.get(far).unwrap().last_answer().to_vec();

    // Commit WITHOUT pumping: depart an object inside near's range.
    engine.submit(Update::Depart(ObjectId(42))); // (100, 100)
    engine.commit();

    // A tick of the far sub served from its (clean) envelope cache:
    // still bit-identical to fresh evaluation at the current epoch,
    // because nothing inside its envelope changed.
    let pdf = far_request.issuer.pdf().clone();
    let (_, delta) = registry.tick(&engine, far, pdf).unwrap();
    delta.apply(&mut far_state);
    assert_state_fresh(
        &engine,
        &Mirror {
            id: far,
            request: far_request.clone(),
            state: far_state.clone(),
        },
    );

    // A tick that jumps INTO the dirty region before any pump must
    // re-probe against the current epoch, not serve stale state.
    let moved = request_at(100.0, 100.0, false);
    let (_, delta) = registry
        .tick(&engine, far, moved.issuer.pdf().clone())
        .unwrap();
    delta.apply(&mut far_state);
    let fresh = engine.snapshot().execute_one(&moved);
    assert_eq!(far_state.len(), fresh.results.len());
    assert!(far_state.iter().all(|m| m.id != ObjectId(42)));

    // The pump then wakes the near sub and reconciles it.
    let mut emitted = Vec::new();
    registry.pump(&engine, |id, _, delta| emitted.push((id, delta.clone())));
    assert_eq!(emitted.len(), 1);
    assert_eq!(emitted[0].0, near);
    emitted[0].1.apply(&mut near_state);
    assert_state_fresh(
        &engine,
        &Mirror {
            id: near,
            request: near_request,
            state: near_state,
        },
    );
    // A second pump with nothing new is a no-op.
    registry.pump(&engine, |_, _, _| panic!("nothing to emit"));
}

/// Steady-state ticks — motion within the envelope, no commits — issue
/// zero index probes, and the registry's scratch buffers carry no
/// state between subscriptions (a dirty registry reused for a new
/// scenario answers exactly like a fresh one).
#[test]
fn steady_ticks_are_probe_free_and_scratch_is_stateless() {
    let engine = grid_engine(2);
    let mut dirty: SubscriptionRegistry<PointEngine> = SubscriptionRegistry::new();

    // Drive the registry hard to dirty every internal buffer.
    let a = dirty.subscribe(&engine, request_at(500.0, 500.0, true), 120.0);
    for k in 0..30u64 {
        let request = request_at(400.0 + k as f64 * 9.0, 510.0, false);
        dirty
            .tick(&engine, a, request.issuer.pdf().clone())
            .unwrap();
    }
    engine.submit(Update::Move(PointObject::new(
        0u64,
        Point::new(501.0, 501.0),
    )));
    engine.commit();
    dirty.pump(&engine, |_, _, _| {});
    dirty.unsubscribe(a);
    dirty.clear();

    // Same scenario through the dirty registry and a fresh one.
    let mut fresh: SubscriptionRegistry<PointEngine> = SubscriptionRegistry::new();
    let request = request_at(300.0, 300.0, false);
    let id_dirty = dirty.subscribe(&engine, request.clone(), 150.0);
    let id_fresh = fresh.subscribe(&engine, request.clone(), 150.0);

    let probes_before = dirty.get(id_dirty).unwrap().probes();
    for k in 0..40u64 {
        let moved = request_at(300.0 + (k % 7) as f64 * 2.0, 300.0, false);
        let pdf = moved.issuer.pdf().clone();
        let d1: AnswerDelta = dirty
            .tick(&engine, id_dirty, pdf.clone())
            .unwrap()
            .1
            .clone();
        let d2: AnswerDelta = fresh.tick(&engine, id_fresh, pdf).unwrap().1.clone();
        assert_eq!(d1, d2, "tick {k}: dirty registry diverged from fresh");
    }
    let sub = dirty.get(id_dirty).unwrap();
    assert_eq!(
        sub.probes(),
        probes_before,
        "steady ticks must not probe the index"
    );
    assert_eq!(sub.cache_hits(), 40);
}

/// The uncertain catalog gets the same treatment: standing C-IUQ
/// subscriptions produce deltas bit-identical to fresh re-evaluation
/// (the wake path re-checks *region overlap* rather than point
/// containment).
#[test]
fn uncertain_subscriptions_track_fresh_reevaluation() {
    use iloc::core::pipeline::UncertainRequest;
    use iloc::core::{CiuqStrategy, UncertainEngine};

    let objects: Vec<UncertainObject> = (0..144u64)
        .map(|k| {
            let c = Point::new((k % 12) as f64 * 80.0 + 40.0, (k / 12) as f64 * 80.0 + 40.0);
            UncertainObject::new(k, UniformPdf::new(Rect::centered(c, 18.0, 18.0)))
        })
        .collect();
    let engine: ShardedEngine<UncertainEngine> = ShardedEngine::build(objects, 3);
    let mut registry: SubscriptionRegistry<UncertainEngine> = SubscriptionRegistry::new();

    let make_request = |x: f64, y: f64| {
        UncertainRequest::ciuq(
            Issuer::uniform(Rect::centered(Point::new(x, y), 50.0, 50.0)),
            RangeSpec::square(90.0),
            0.15,
            CiuqStrategy::RTreeMinkowski,
        )
    };
    let mut request = make_request(400.0, 400.0);
    let id = registry.subscribe(&engine, request.clone(), 100.0);
    let mut state = registry.get(id).unwrap().last_answer().to_vec();
    assert!(!state.is_empty());

    let mut rng = Rng(77);
    for round in 0..15u64 {
        // Move a few objects and commit.
        for _ in 0..3 {
            let k = rng.below(144);
            engine.submit(Update::Move(UncertainObject::new(
                k,
                UniformPdf::new(Rect::centered(
                    Point::new(rng.coord(), rng.coord()),
                    18.0,
                    18.0,
                )),
            )));
        }
        engine.commit();
        registry.pump(&engine, |got, _, delta| {
            assert_eq!(got, id);
            delta.apply(&mut state);
        });
        // Drift the issuer.
        request = make_request(
            400.0 + round as f64 * 12.0,
            400.0 + (round % 3) as f64 * 8.0,
        );
        let (_, delta) = registry
            .tick(&engine, id, request.issuer.pdf().clone())
            .unwrap();
        delta.apply(&mut state);

        let fresh = engine.snapshot().execute_one(&request);
        assert_eq!(state.len(), fresh.results.len(), "round {round}");
        for (a, b) in state.iter().zip(&fresh.results) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.probability.to_bits(), b.probability.to_bits());
        }
    }
}

/// Constrained subscriptions are normalized to Minkowski filtering, so
/// a PExpanded request subscribes cleanly and its stream matches the
/// engine's MinkowskiSum answers (identical result sets by Lemma 5).
#[test]
fn p_expanded_requests_normalize_to_minkowski() {
    let engine = grid_engine(2);
    let mut registry: SubscriptionRegistry<PointEngine> = SubscriptionRegistry::new();
    let issuer = Issuer::uniform(Rect::centered(Point::new(500.0, 500.0), 45.0, 45.0));
    let p_expanded = PointRequest::cipq(
        issuer.clone(),
        RangeSpec::square(70.0),
        0.3,
        CipqStrategy::PExpanded,
    );
    let id = registry.subscribe(&engine, p_expanded, 50.0);
    let stored = registry.get(id).unwrap().request();
    assert_eq!(
        stored.constraint.unwrap().strategy,
        CipqStrategy::MinkowskiSum
    );
    let want = engine.snapshot().execute_one(&PointRequest::cipq(
        issuer,
        RangeSpec::square(70.0),
        0.3,
        CipqStrategy::MinkowskiSum,
    ));
    let got = registry.get(id).unwrap().last_answer();
    assert_eq!(got.len(), want.results.len());
    for (a, b) in got.iter().zip(&want.results) {
        assert_eq!(a.probability.to_bits(), b.probability.to_bits());
    }
}
