//! Criterion microbenchmark for Figure 11: C-IPQ Minkowski-sum filter
//! vs p-expanded-query filter across thresholds.

use criterion::{criterion_group, criterion_main, Criterion};
use iloc_bench::{Scale, TestBed};
use iloc_core::{CipqStrategy, Issuer, RangeSpec};
use iloc_datagen::WorkloadGen;

fn bench(c: &mut Criterion) {
    let bed = TestBed::build(Scale::quick());
    let range = RangeSpec::square(500.0);
    let issuer = Issuer::uniform(WorkloadGen::new(11).issuer_region(250.0));
    let mut group = c.benchmark_group("fig11");
    for qp in [0.0, 0.3, 0.6, 0.9] {
        group.bench_function(format!("minkowski/qp{qp}"), |b| {
            b.iter(|| {
                bed.california
                    .cipq(&issuer, range, qp, CipqStrategy::MinkowskiSum)
            })
        });
        group.bench_function(format!("p_expanded/qp{qp}"), |b| {
            b.iter(|| {
                bed.california
                    .cipq(&issuer, range, qp, CipqStrategy::PExpanded)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
