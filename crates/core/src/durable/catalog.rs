//! [`DurableCatalog`]: a [`ShardedEngine`] with an optional
//! write-ahead log and checkpoint store attached to its commit path.

use std::path::PathBuf;
use std::sync::Mutex;

use super::checkpoint;
use super::wal::Wal;
use super::{DurableObject, FsyncPolicy, StoreError};
use crate::serve::{CommitReport, EpochDirt, ServeEngine, ShardedEngine, Snapshot, Update};

/// How many checkpoint files to retain (the newest is the recovery
/// base; one older survives as a fallback should the newest be found
/// corrupt).
const KEEP_CHECKPOINTS: usize = 2;

/// Where and how a [`DurableCatalog`] persists.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory holding this catalog's WAL segments and checkpoints.
    pub dir: PathBuf,
    /// When WAL appends reach the disk (see [`FsyncPolicy`]).
    pub fsync: FsyncPolicy,
}

impl StoreConfig {
    /// A store in `dir` with the strictest fsync policy.
    pub fn new(dir: impl Into<PathBuf>) -> StoreConfig {
        StoreConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
        }
    }
}

/// What [`DurableCatalog::open`] did to bring the catalog up.
#[derive(Debug, Clone, Default)]
pub struct CatalogRecovery {
    /// `false`: the directory held no usable state and the catalog was
    /// seeded fresh (writing its epoch-0 base checkpoint). `true`: the
    /// catalog was rebuilt from disk.
    pub recovered: bool,
    /// Engine epoch after recovery — what queries now answer against,
    /// and what the serving layer reports to reconnecting subscribers.
    pub epoch: u64,
    /// Epoch of the checkpoint recovery started from.
    pub checkpoint_epoch: u64,
    /// WAL batches replayed through the normal submit/commit path.
    pub replayed_batches: usize,
    /// Updates those batches carried.
    pub replayed_updates: usize,
    /// A torn or corrupt WAL tail was detected and truncated.
    pub wal_truncated: bool,
    /// Well-formed WAL records skipped as stale duplicates (epoch at
    /// or below the recovery base — rotation leftovers).
    pub stale_records: usize,
    /// Checkpoint files newer than the one used that failed
    /// validation.
    pub invalid_checkpoints: usize,
    /// Live objects after recovery.
    pub objects: usize,
}

#[derive(Debug)]
struct DurableState<O> {
    wal: Wal,
    dir: PathBuf,
    staged: Vec<Update<O>>,
    staged_spare: Vec<Update<O>>,
    last_checkpoint_epoch: u64,
    /// Reusable checkpoint encode buffer (checkpoints run off the
    /// commit path, but reuse keeps them from churning the allocator).
    ckpt_buf: Vec<u8>,
}

/// A sharded catalog whose commit path is (optionally) durable.
///
/// In **transient** mode ([`DurableCatalog::transient`]) this is a
/// plain [`ShardedEngine`] behind passthrough methods. In **durable**
/// mode ([`DurableCatalog::open`]) every submitted update is also
/// staged for the log, and [`DurableCatalog::commit`] appends the
/// staged batch — keyed by the epoch it is about to commit as, fsync'd
/// per policy — **before** the engine publishes the new snapshot. The
/// read path ([`DurableCatalog::snapshot`] and everything downstream)
/// is untouched: queries never see the store.
///
/// All mutations must go through the catalog (`submit` / `submit_all`
/// / `commit`); submitting to the inner engine directly would desync
/// the log from the published state.
#[derive(Debug)]
pub struct DurableCatalog<E: ServeEngine> {
    engine: ShardedEngine<E>,
    durable: Option<Mutex<DurableState<E::Object>>>,
}

impl<E: ServeEngine> DurableCatalog<E>
where
    E::Object: DurableObject,
{
    /// A catalog with no store attached — exactly a
    /// [`ShardedEngine::build`].
    pub fn transient(objects: Vec<E::Object>, shard_count: usize) -> Self {
        DurableCatalog {
            engine: ShardedEngine::build(objects, shard_count),
            durable: None,
        }
    }

    /// Opens (or creates) the store in `config.dir` and brings the
    /// catalog up:
    ///
    /// * **Fresh directory** — `seed()` provides the initial objects,
    ///   the engine is built at epoch 0, and a base checkpoint is
    ///   written synchronously so recovery never depends on re-running
    ///   the seed.
    /// * **Existing state** — loads the newest valid checkpoint,
    ///   rebuilds the engine at that epoch, and replays the WAL suffix
    ///   through the normal submit/commit path. A torn WAL tail is
    ///   truncated; a record that breaks the epoch sequence cuts the
    ///   log there (replaying a prefix is safe, guessing past damage
    ///   is not).
    pub fn open(
        config: &StoreConfig,
        shard_count: usize,
        seed: impl FnOnce() -> Vec<E::Object>,
    ) -> Result<(Self, CatalogRecovery), StoreError> {
        let mut recovery = CatalogRecovery::default();
        let ckpt_scan = checkpoint::load_latest::<E::Object>(&config.dir)?;
        recovery.invalid_checkpoints = ckpt_scan.invalid;
        let (mut wal, batches, wal_scan) = Wal::recover::<E::Object>(&config.dir, config.fsync)?;
        recovery.wal_truncated = wal_scan.truncated;

        let fresh = ckpt_scan.loaded.is_none() && batches.is_empty() && ckpt_scan.invalid == 0;
        let (base_epoch, base_objects) = match ckpt_scan.loaded {
            Some(c) => (c.epoch, c.objects),
            // No usable checkpoint. With WAL records (or corrupt
            // checkpoints) present this is itself a recovery — the
            // base state is the deterministic seed at epoch 0, which
            // the epoch-0 checkpoint recorded before any commit.
            None => (0, seed()),
        };
        recovery.checkpoint_epoch = base_epoch;
        recovery.recovered = !fresh;

        let engine = ShardedEngine::build_at(base_objects, shard_count, base_epoch);

        // Replay strictly ascending from the base epoch; cut the log
        // at the first record that gaps or rewinds the sequence.
        for batch in batches {
            let current = engine.epoch();
            if batch.epoch <= current {
                recovery.stale_records += 1;
                continue;
            }
            if batch.epoch != current + 1 {
                wal.truncate_from(batch.segment, batch.offset)?;
                recovery.wal_truncated = true;
                break;
            }
            recovery.replayed_batches += 1;
            recovery.replayed_updates += batch.updates.len();
            engine.submit_all(batch.updates);
            let report = engine.commit();
            debug_assert_eq!(report.epoch, batch.epoch, "replay must track the log");
        }

        let catalog = DurableCatalog {
            engine,
            durable: Some(Mutex::new(DurableState {
                wal,
                dir: config.dir.clone(),
                staged: Vec::new(),
                staged_spare: Vec::new(),
                last_checkpoint_epoch: base_epoch,
                ckpt_buf: Vec::new(),
            })),
        };
        if fresh {
            // The base checkpoint makes the seed durable: every later
            // recovery starts from disk, never from re-seeding.
            catalog.checkpoint()?;
        }
        recovery.epoch = catalog.engine.epoch();
        recovery.objects = catalog.engine.len();
        Ok((catalog, recovery))
    }

    /// The inner engine, for read paths that want it directly
    /// (subscription pumps, snapshot comparisons). Do **not** submit
    /// or commit through it on a durable catalog.
    pub fn engine(&self) -> &ShardedEngine<E> {
        &self.engine
    }

    /// `true` when a store is attached.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// The epoch of the most recent completed checkpoint (`None` when
    /// transient).
    pub fn last_checkpoint_epoch(&self) -> Option<u64> {
        self.durable
            .as_ref()
            .map(|d| d.lock().expect("store lock poisoned").last_checkpoint_epoch)
    }

    /// Buffers one update for the next epoch (and stages it for the
    /// log when durable).
    pub fn submit(&self, update: Update<E::Object>) {
        if let Some(d) = &self.durable {
            d.lock()
                .expect("store lock poisoned")
                .staged
                .push(update.clone());
        }
        self.engine.submit(update);
    }

    /// Buffers a batch of updates for the next epoch.
    pub fn submit_all(&self, updates: impl IntoIterator<Item = Update<E::Object>>) {
        match &self.durable {
            Some(d) => {
                let mut st = d.lock().expect("store lock poisoned");
                for update in updates {
                    st.staged.push(update.clone());
                    self.engine.submit(update);
                }
            }
            None => self.engine.submit_all(updates),
        }
    }

    /// Applies every buffered update and publishes the next epoch —
    /// after the staged batch has been appended to the log and fsync'd
    /// per policy, so an acknowledged commit is durable before it is
    /// visible. Transient catalogs just commit.
    pub fn commit(&self) -> Result<CommitReport, StoreError> {
        let Some(d) = &self.durable else {
            return Ok(self.engine.commit());
        };
        let mut st = d.lock().expect("store lock poisoned");
        // Drain the staged batch against the spare buffer so steady
        // submit/commit cycles reuse one allocation (the same idiom as
        // the engine's pending buffer).
        let mut staged = std::mem::take(&mut st.staged_spare);
        std::mem::swap(&mut staged, &mut st.staged);
        if staged.is_empty() {
            st.staged_spare = staged;
            return Ok(self.engine.commit());
        }
        let epoch = self.engine.epoch() + 1;
        let appended = st.wal.append(epoch, &staged);
        staged.clear();
        st.staged_spare = staged;
        appended?;
        // The log record is on disk (per policy); only now may the
        // epoch become visible. Still under the store lock, so commits
        // serialize with each other and with checkpoint rotation.
        let report = self.engine.commit();
        debug_assert_eq!(report.epoch, epoch, "commit must publish the logged epoch");
        Ok(report)
    }

    /// Writes a checkpoint of the current snapshot, then rotates the
    /// log and prunes segments and checkpoints it superseded. The
    /// snapshot serialization runs **without** the store lock —
    /// commits proceed concurrently; only the final rotation takes the
    /// lock briefly. Returns the checkpointed epoch, or `None` when
    /// transient or already checkpointed at this epoch.
    pub fn checkpoint(&self) -> Result<Option<u64>, StoreError> {
        let Some(d) = &self.durable else {
            return Ok(None);
        };
        let snapshot = self.engine.snapshot();
        let epoch = snapshot.epoch();
        let (dir, mut buf) = {
            let mut st = d.lock().expect("store lock poisoned");
            if st.last_checkpoint_epoch >= epoch && epoch != 0 {
                return Ok(None);
            }
            (st.dir.clone(), std::mem::take(&mut st.ckpt_buf))
        };
        let shard_slices: Vec<&[E::Object]> =
            snapshot.shards().iter().map(|s| s.objects()).collect();
        let written = checkpoint::write_checkpoint(&dir, epoch, &shard_slices, &mut buf);
        let mut st = d.lock().expect("store lock poisoned");
        st.ckpt_buf = buf;
        written?;
        if st.last_checkpoint_epoch < epoch || epoch == 0 {
            st.last_checkpoint_epoch = epoch;
            // Future records land in a fresh segment; everything the
            // checkpoint covers becomes prunable.
            let next = self.engine.epoch() + 1;
            st.wal.rotate(next)?;
            st.wal.prune_covered(epoch)?;
            checkpoint::prune(&st.dir, KEEP_CHECKPOINTS)?;
        }
        Ok(Some(epoch))
    }

    /// Fsyncs any unsynced log appends regardless of policy (a no-op
    /// when transient). Graceful shutdown calls this before the final
    /// checkpoint.
    pub fn flush(&self) -> Result<(), StoreError> {
        if let Some(d) = &self.durable {
            d.lock().expect("store lock poisoned").wal.flush()?;
        }
        Ok(())
    }

    // --- passthroughs ----------------------------------------------------

    /// The current epoch's snapshot.
    pub fn snapshot(&self) -> Snapshot<E> {
        self.engine.snapshot()
    }

    /// The current epoch number.
    pub fn epoch(&self) -> u64 {
        self.engine.epoch()
    }

    /// Live objects in the current epoch.
    pub fn len(&self) -> usize {
        self.engine.len()
    }

    /// `true` when the current epoch holds no objects.
    pub fn is_empty(&self) -> bool {
        self.engine.is_empty()
    }

    /// Updates buffered but not yet committed.
    pub fn pending_len(&self) -> usize {
        self.engine.pending_len()
    }

    /// See [`ShardedEngine::dirt_since`].
    pub fn dirt_since(&self, epoch: u64, out: &mut Vec<EpochDirt>) -> bool {
        self.engine.dirt_since(epoch, out)
    }
}
