//! Plain-text dataset I/O.
//!
//! The paper's experiments used TIGER/Line-derived files; this module
//! reads and writes the de-facto exchange format those datasets ship
//! in once converted: whitespace-separated coordinates, one object per
//! line (`x y` for points, `x0 y0 x1 y1` for rectangles), `#` comments
//! and blank lines ignored. A user with the real California/Long Beach
//! files can therefore run every experiment on them unchanged, and the
//! synthetic generators can be exported for inspection or plotting.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use iloc_geometry::{Point, Rect};

/// Errors raised while parsing a dataset file.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying file error.
    Io(io::Error),
    /// A line had the wrong number of fields or a bad number.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Description of what was wrong.
        reason: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "io error: {e}"),
            ParseError::Malformed { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

fn parse_fields(content: &str, per_line: usize) -> Result<Vec<Vec<f64>>, ParseError> {
    let mut out = Vec::new();
    for (n, raw) in content.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Result<Vec<f64>, _> = line.split_whitespace().map(str::parse).collect();
        let fields = fields.map_err(|e| ParseError::Malformed {
            line: n + 1,
            reason: format!("bad number: {e}"),
        })?;
        if fields.len() != per_line {
            return Err(ParseError::Malformed {
                line: n + 1,
                reason: format!("expected {per_line} fields, got {}", fields.len()),
            });
        }
        if fields.iter().any(|v| !v.is_finite()) {
            return Err(ParseError::Malformed {
                line: n + 1,
                reason: "non-finite coordinate".to_string(),
            });
        }
        out.push(fields);
    }
    Ok(out)
}

/// Parses a point dataset (`x y` per line) from a string.
pub fn parse_points(content: &str) -> Result<Vec<Point>, ParseError> {
    Ok(parse_fields(content, 2)?
        .into_iter()
        .map(|f| Point::new(f[0], f[1]))
        .collect())
}

/// Parses a rectangle dataset (`x0 y0 x1 y1` per line) from a string.
/// Coordinates may come in either order per axis.
pub fn parse_rects(content: &str) -> Result<Vec<Rect>, ParseError> {
    Ok(parse_fields(content, 4)?
        .into_iter()
        .map(|f| {
            Rect::from_coords(
                f[0].min(f[2]),
                f[1].min(f[3]),
                f[0].max(f[2]),
                f[1].max(f[3]),
            )
        })
        .collect())
}

/// Loads a point dataset from a file.
pub fn load_points(path: impl AsRef<Path>) -> Result<Vec<Point>, ParseError> {
    parse_points(&fs::read_to_string(path)?)
}

/// Loads a rectangle dataset from a file.
pub fn load_rects(path: impl AsRef<Path>) -> Result<Vec<Rect>, ParseError> {
    parse_rects(&fs::read_to_string(path)?)
}

/// Serialises points to the exchange format.
pub fn format_points(points: &[Point]) -> String {
    let mut s = String::with_capacity(points.len() * 24);
    for p in points {
        let _ = writeln!(s, "{} {}", p.x, p.y);
    }
    s
}

/// Serialises rectangles to the exchange format.
pub fn format_rects(rects: &[Rect]) -> String {
    let mut s = String::with_capacity(rects.len() * 48);
    for r in rects {
        let _ = writeln!(s, "{} {} {} {}", r.min.x, r.min.y, r.max.x, r.max.y);
    }
    s
}

/// Writes points to a file.
pub fn save_points(path: impl AsRef<Path>, points: &[Point]) -> io::Result<()> {
    fs::write(path, format_points(points))
}

/// Writes rectangles to a file.
pub fn save_rects(path: impl AsRef<Path>, rects: &[Rect]) -> io::Result<()> {
    fs::write(path, format_rects(rects))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_points_with_comments_and_blanks() {
        let content = "# header\n1 2\n\n 3.5  -4.25 # trailing comment\n";
        let pts = parse_points(content).unwrap();
        assert_eq!(pts, vec![Point::new(1.0, 2.0), Point::new(3.5, -4.25)]);
    }

    #[test]
    fn parse_rects_normalises_corner_order() {
        let rs = parse_rects("5 6 1 2\n").unwrap();
        assert_eq!(rs, vec![Rect::from_coords(1.0, 2.0, 5.0, 6.0)]);
    }

    #[test]
    fn wrong_arity_is_reported_with_line_number() {
        let err = parse_points("1 2\n1 2 3\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("expected 2 fields"), "{msg}");
    }

    #[test]
    fn bad_numbers_are_reported() {
        let err = parse_points("1 banana\n").unwrap_err();
        assert!(err.to_string().contains("bad number"));
        let err = parse_points("1 inf\n").unwrap_err();
        assert!(err.to_string().contains("non-finite"));
    }

    #[test]
    fn point_roundtrip_through_file() {
        let pts = crate::california_points(500, 17);
        let path = std::env::temp_dir().join("iloc_points_roundtrip.txt");
        save_points(&path, &pts).unwrap();
        let back = load_points(&path).unwrap();
        assert_eq!(pts, back);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn rect_roundtrip_through_file() {
        let rs = crate::long_beach_rects(400, 18);
        let path = std::env::temp_dir().join("iloc_rects_roundtrip.txt");
        save_rects(&path, &rs).unwrap();
        let back = load_rects(&path).unwrap();
        assert_eq!(rs, back);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_points("/nonexistent/iloc/points.txt").unwrap_err();
        assert!(matches!(err, ParseError::Io(_)));
    }
}
