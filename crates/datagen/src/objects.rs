//! Converters from raw geometry to the database object types.

use iloc_geometry::{Point, Rect};
use iloc_uncertainty::{PointObject, TruncatedGaussianPdf, UncertainObject, UniformPdf};

/// Wraps raw points as [`PointObject`]s with sequential ids.
pub fn point_objects(points: &[Point]) -> Vec<PointObject> {
    points
        .iter()
        .enumerate()
        .map(|(k, &p)| PointObject::new(k as u64, p))
        .collect()
}

/// Wraps rectangles as uniform-pdf [`UncertainObject`]s (the paper's
/// default model) with sequential ids and default U-catalogs.
pub fn uniform_objects(regions: &[Rect]) -> Vec<UncertainObject> {
    regions
        .iter()
        .enumerate()
        .map(|(k, &r)| UncertainObject::new(k as u64, UniformPdf::new(r)))
        .collect()
}

/// Wraps rectangles as truncated-Gaussian [`UncertainObject`]s with the
/// paper's Figure-13 parameterisation (mean at centre, σ = extent/6).
pub fn gaussian_objects(regions: &[Rect]) -> Vec<UncertainObject> {
    regions
        .iter()
        .enumerate()
        .map(|(k, &r)| UncertainObject::new(k as u64, TruncatedGaussianPdf::paper_default(r)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc_uncertainty::ObjectId;

    #[test]
    fn point_objects_keep_order_and_ids() {
        let pts = vec![Point::new(1.0, 2.0), Point::new(3.0, 4.0)];
        let objs = point_objects(&pts);
        assert_eq!(objs.len(), 2);
        assert_eq!(objs[1].id, ObjectId(1));
        assert_eq!(objs[1].loc, Point::new(3.0, 4.0));
    }

    #[test]
    fn uniform_objects_preserve_regions() {
        let rs = vec![Rect::from_coords(0.0, 0.0, 2.0, 2.0)];
        let objs = uniform_objects(&rs);
        assert_eq!(objs[0].region(), rs[0]);
        assert_eq!(objs[0].catalog().len(), 6);
    }

    #[test]
    fn gaussian_objects_have_tighter_pbounds() {
        let rs = vec![Rect::from_coords(0.0, 0.0, 60.0, 60.0)];
        let gauss = gaussian_objects(&rs);
        let unif = uniform_objects(&rs);
        let bg = gauss[0].catalog().best_at_most(0.3).rect;
        let bu = unif[0].catalog().best_at_most(0.3).rect;
        assert!(bg.area() < bu.area());
    }
}
