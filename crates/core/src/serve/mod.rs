//! The sharded serving layer: dynamic catalogs behind epoch-style
//! snapshots.
//!
//! The paper evaluates queries over a *static* object set; a deployed
//! location service faces a churning one — users arrive, depart and
//! move while queries keep draining. This module serves that workload
//! with a [`ShardedEngine`]: objects are hash-partitioned by id across
//! `n` shards, each shard a complete single-node engine
//! ([`PointEngine`] or [`UncertainEngine`]) answering the full
//! filter → prune → refine pipeline over its partition, and a query
//! fans out to every shard and **fan-in merges the per-shard answers
//! in id order**, so a sharded answer is indistinguishable from a
//! single-engine answer over the union (property-tested across shard
//! counts).
//!
//! ## The snapshot-consistency invariant
//!
//! All reads go through a [`Snapshot`], an immutable epoch of the
//! whole catalog:
//!
//! > **Every query executed against a snapshot sees exactly the
//! > objects that were live when that snapshot's epoch was
//! > committed — never a torn state with some updates applied on one
//! > shard but not another, no matter how many updates are submitted
//! > or committed concurrently.**
//!
//! The implementation makes the invariant structural rather than
//! policed: a snapshot is an `Arc` of an immutable shard list,
//! [`ShardedEngine::submit`] only buffers updates, and
//! [`ShardedEngine::commit`] applies the buffer **copy-on-write** —
//! affected shards are cloned, mutated incrementally (R-tree
//! insert/condense, PTI constrained-rectangle repair; never a
//! rebuild), and published as the next epoch by an atomic pointer
//! swap. In-flight queries keep reading the epoch they started on;
//! new queries pick up the new epoch with the next
//! [`ShardedEngine::snapshot`] call. Readers never block writers and
//! writers never block readers (the `RwLock` guards only the pointer
//! swap itself, held for nanoseconds).
//!
//! Determinism carries over from the pipeline: with closed-form
//! integrators, answers through any shard count are **bit-identical**
//! to a from-scratch rebuild on the same live set (`tests/dynamic.rs`
//! pins this for shard counts 1/2/8).
//!
//! ```
//! use iloc_core::serve::{ShardedEngine, Update};
//! use iloc_core::pipeline::PointRequest;
//! use iloc_core::{Issuer, PointEngine, RangeSpec};
//! use iloc_geometry::{Point, Rect};
//! use iloc_uncertainty::{ObjectId, PointObject};
//!
//! let objects: Vec<PointObject> = (0..100)
//!     .map(|k| PointObject::new(k as u64, Point::new(k as f64 * 10.0, 500.0)))
//!     .collect();
//! let engine: ShardedEngine<PointEngine> = ShardedEngine::build(objects, 4);
//!
//! // Queries run against a consistent snapshot...
//! let snapshot = engine.snapshot();
//! let issuer = Issuer::uniform(Rect::centered(Point::new(500.0, 500.0), 50.0, 50.0));
//! let before = snapshot.execute_one(&PointRequest::ipq(issuer.clone(), RangeSpec::square(80.0)));
//!
//! // ...while updates buffer and apply atomically at the next epoch.
//! engine.submit(Update::Depart(ObjectId(50)));
//! engine.submit(Update::Arrive(PointObject::new(1_000u64, Point::new(505.0, 500.0))));
//! engine.commit();
//!
//! let after = engine.snapshot().execute_one(&PointRequest::ipq(issuer, RangeSpec::square(80.0)));
//! // The old snapshot still answers from its own epoch.
//! assert_eq!(before.results.len(), after.results.len());
//! assert!(before.probability_of(ObjectId(50)).is_some());
//! assert!(after.probability_of(ObjectId(50)).is_none());
//! assert!(after.probability_of(ObjectId(1_000)).is_some());
//! ```

mod sharded;

pub use sharded::{CommitReport, EpochDirt, ShardServer, ShardedEngine, Snapshot, DIRT_HISTORY};

use iloc_geometry::Rect;
use iloc_uncertainty::{ObjectId, PointObject, UncertainObject};

use crate::engine::{PointEngine, UncertainEngine};
use crate::pipeline::BatchEngine;

/// One catalog mutation, routed to the shard owning its object id.
#[derive(Debug, Clone)]
pub enum Update<O> {
    /// A new object enters the catalog.
    Arrive(O),
    /// The object with this id leaves the catalog (a no-op when the
    /// id is unknown — departures can race with expiry).
    Depart(ObjectId),
    /// The object with this payload's id is replaced wholesale (its
    /// new location / uncertainty region); equivalent to a departure
    /// plus an arrival within one epoch.
    Move(O),
}

/// A single-node engine the sharded serving layer can partition:
/// buildable from an object list, batch-queryable, and **dynamically
/// maintainable** through incremental index updates. (`Send` on top
/// of `BatchEngine`'s `Sync` because snapshots share shard `Arc`s
/// across serving threads.)
pub trait ServeEngine: BatchEngine + Clone + Send {
    /// The catalog object type (point or uncertain).
    type Object: Clone + Send + Sync;

    /// Builds one shard engine over a partition of the catalog.
    fn build_from(objects: Vec<Self::Object>) -> Self;

    /// The id an object is routed by.
    fn object_id(object: &Self::Object) -> ObjectId;

    /// Inserts one object, maintaining every index incrementally.
    /// **Must upsert**: when the object's id is already live, the
    /// existing object is replaced — [`ShardedEngine::commit`] relies
    /// on this for both `Move` and retried `Arrive` updates.
    fn insert_object(&mut self, object: Self::Object);

    /// Removes the object with this id incrementally; `true` when it
    /// was present.
    fn remove_object(&mut self, id: ObjectId) -> bool;

    /// The spatial extent of one object (a point object is a
    /// degenerate rectangle). [`ShardedEngine::commit`] merges these
    /// into the epoch's dirty rectangle.
    fn bounds_of(object: &Self::Object) -> Rect;

    /// The extent of the live object with this id, if present — the
    /// *pre-update* footprint a departure or move dirties.
    fn object_bounds(&self, id: ObjectId) -> Option<Rect>;

    /// Number of live objects in this shard.
    fn len(&self) -> usize;

    /// `true` when this shard holds nothing.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every live object in this shard, in the engine's insertion
    /// order. Checkpointing enumerates shard state through this.
    fn objects(&self) -> &[Self::Object];
}

impl ServeEngine for PointEngine {
    type Object = PointObject;

    fn build_from(objects: Vec<PointObject>) -> Self {
        PointEngine::from_objects(objects)
    }

    fn object_id(object: &PointObject) -> ObjectId {
        object.id
    }

    fn insert_object(&mut self, object: PointObject) {
        PointEngine::insert_object(self, object);
    }

    fn remove_object(&mut self, id: ObjectId) -> bool {
        PointEngine::remove(self, id)
    }

    fn bounds_of(object: &PointObject) -> Rect {
        Rect::from_point(object.loc)
    }

    fn object_bounds(&self, id: ObjectId) -> Option<Rect> {
        self.find(id).map(|o| Rect::from_point(o.loc))
    }

    fn len(&self) -> usize {
        PointEngine::len(self)
    }

    fn objects(&self) -> &[PointObject] {
        PointEngine::objects(self)
    }
}

impl ServeEngine for UncertainEngine {
    type Object = UncertainObject;

    fn build_from(objects: Vec<UncertainObject>) -> Self {
        UncertainEngine::build(objects)
    }

    fn object_id(object: &UncertainObject) -> ObjectId {
        object.id
    }

    fn insert_object(&mut self, object: UncertainObject) {
        UncertainEngine::insert(self, object);
    }

    fn remove_object(&mut self, id: ObjectId) -> bool {
        UncertainEngine::remove(self, id)
    }

    fn bounds_of(object: &UncertainObject) -> Rect {
        object.region()
    }

    fn object_bounds(&self, id: ObjectId) -> Option<Rect> {
        self.find(id).map(|o| o.region())
    }

    fn len(&self) -> usize {
        UncertainEngine::len(self)
    }

    fn objects(&self) -> &[UncertainObject] {
        UncertainEngine::objects(self)
    }
}

/// The shard owning an object id: a SplitMix64 finalizer over the raw
/// id, reduced modulo the shard count. The mix step keeps sequential
/// ids (the common allocation pattern) spread evenly instead of
/// striping them.
pub fn shard_of(id: ObjectId, shard_count: usize) -> usize {
    debug_assert!(shard_count > 0);
    let mut x = id.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % shard_count as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        for n in [1usize, 2, 3, 8, 17] {
            for id in 0..1_000u64 {
                let s = shard_of(ObjectId(id), n);
                assert!(s < n);
                assert_eq!(s, shard_of(ObjectId(id), n), "must be deterministic");
            }
        }
    }

    #[test]
    fn sequential_ids_spread_across_shards() {
        let n = 8;
        let mut counts = vec![0usize; n];
        for id in 0..8_000u64 {
            counts[shard_of(ObjectId(id), n)] += 1;
        }
        for &c in &counts {
            // Perfectly balanced would be 1000; allow wide slack.
            assert!((700..=1_300).contains(&c), "skewed shard load: {counts:?}");
        }
    }
}
