//! **Figure 10** — IUQ response time vs issuer uncertainty size `u`,
//! one series per range size `w ∈ {500, 1000, 1500}`.
//!
//! Same setup as Figure 9 but over the uncertain-object database;
//! the paper reports the same qualitative behaviour (`T` grows with
//! both `u` and `w`), slightly costlier per candidate than IPQ.

use iloc_core::{Issuer, RangeSpec};
use iloc_datagen::WorkloadGen;

use crate::config::TestBed;
use crate::experiments::{U_SWEEP, W_SERIES};
use crate::harness::{print_table, Row, Summary};

/// Runs the experiment and returns the rows.
pub fn run(bed: &TestBed) -> Vec<Row> {
    let mut rows = Vec::new();
    for &w in &W_SERIES {
        let range = RangeSpec::square(w);
        for &u in &U_SWEEP {
            let issuers = WorkloadGen::new(1000).issuer_regions(bed.scale.queries, u);
            let s = Summary::collect(bed.scale.queries, |q| {
                bed.long_beach.iuq(&Issuer::uniform(issuers[q]), range)
            });
            rows.push(Row {
                x: u,
                series: format!("range size w={w}"),
                summary: s,
            });
        }
    }
    print_table(
        "Figure 10: T vs u under different range sizes (IUQ, Long Beach)",
        "uncertainty region size u",
        &rows,
    );
    rows
}
