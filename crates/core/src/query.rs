//! Query-side types: the imprecise issuer, the range specification, and
//! the strategy selectors the experiments compare.

use iloc_geometry::{Point, Rect};
use iloc_uncertainty::{LocationPdf, PdfKind, TruncatedGaussianPdf, UCatalog, UniformPdf};

/// The range-query shape: an axis-parallel rectangle of half-width `w`
/// and half-height `h` centred wherever the issuer happens to be
/// (`R(x, y)` in the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeSpec {
    /// Half-width `w`.
    pub w: f64,
    /// Half-height `h`.
    pub h: f64,
}

impl RangeSpec {
    /// Creates a range of half-width `w`, half-height `h`.
    ///
    /// # Panics
    ///
    /// Panics when either half-extent is negative or non-finite.
    pub fn new(w: f64, h: f64) -> Self {
        assert!(w.is_finite() && h.is_finite() && w >= 0.0 && h >= 0.0);
        RangeSpec { w, h }
    }

    /// Square range of half-size `w` (the paper's experiments use
    /// square ranges).
    pub fn square(w: f64) -> Self {
        RangeSpec::new(w, w)
    }

    /// The concrete query rectangle when the issuer is at `c`.
    #[inline]
    pub fn at(self, c: Point) -> Rect {
        Rect::centered(c, self.w, self.h)
    }
}

/// The **query issuer** `O0`: an uncertain object whose pdf describes
/// where the issuer may actually be, together with its pre-computed
/// U-catalog (used to build `p`-expanded queries).
#[derive(Debug, Clone)]
pub struct Issuer {
    pdf: PdfKind,
    catalog: UCatalog,
}

impl Issuer {
    /// Issuer with a uniform pdf over `region` — the paper's default.
    pub fn uniform(region: Rect) -> Self {
        Issuer::with_pdf(UniformPdf::new(region))
    }

    /// Issuer with the paper's truncated-Gaussian model (Figure 13).
    pub fn gaussian(region: Rect) -> Self {
        Issuer::with_pdf(TruncatedGaussianPdf::paper_default(region))
    }

    /// Issuer with an arbitrary pdf; the default six-level U-catalog is
    /// computed on construction. Accepts any workspace pdf type, a
    /// [`PdfKind`] or a shared handle; wrap other [`LocationPdf`]
    /// implementations with [`PdfKind::shared`].
    pub fn with_pdf(pdf: impl Into<PdfKind>) -> Self {
        let pdf = pdf.into();
        let catalog = UCatalog::build_default(&pdf);
        Issuer { pdf, catalog }
    }

    /// Issuer with custom catalog levels.
    pub fn with_pdf_and_levels(pdf: impl Into<PdfKind>, levels: &[f64]) -> Self {
        let pdf = pdf.into();
        let catalog = UCatalog::build(&pdf, levels);
        Issuer { pdf, catalog }
    }

    /// Replaces the issuer's pdf in place, recomputing the default
    /// U-catalog while **reusing its storage**. Equivalent to building
    /// a fresh [`Issuer::with_pdf`], but allocation-free once the
    /// catalog table has grown to its six default entries — the network
    /// serving layer decodes each incoming query into a long-lived
    /// issuer slot through this, which keeps the steady-state request
    /// path free of heap allocation end to end.
    pub fn set_pdf(&mut self, pdf: impl Into<PdfKind>) {
        self.pdf = pdf.into();
        self.catalog.rebuild_default(&self.pdf);
    }

    /// The issuer's pdf `f0`, statically dispatched over the concrete
    /// pdf types (coerces to `&dyn LocationPdf` where needed).
    pub fn pdf(&self) -> &PdfKind {
        &self.pdf
    }

    /// The issuer's uncertainty region `U0`.
    pub fn region(&self) -> Rect {
        self.pdf.region()
    }

    /// The issuer's U-catalog.
    pub fn catalog(&self) -> &UCatalog {
        &self.catalog
    }
}

/// Filter used when answering a constrained point query (Figure 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CipqStrategy {
    /// Filter with the plain Minkowski sum `R ⊕ U0`, threshold on the
    /// computed probabilities afterwards.
    MinkowskiSum,
    /// Filter with the `Qp`-expanded query (Lemma 5), which shrinks as
    /// `Qp` grows.
    PExpanded,
}

/// Index/pruning combination for a constrained uncertain query
/// (Figure 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CiuqStrategy {
    /// Plain R-tree filtered by the Minkowski sum; probabilities
    /// computed for every candidate, thresholded afterwards.
    RTreeMinkowski,
    /// PTI filtered by the `p`-expanded query with node-level
    /// Strategy 1/2 pruning, then the per-object Strategy 1/2/3 tests,
    /// then probability refinement of the survivors.
    PtiPExpanded,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_spec_constructors() {
        let r = RangeSpec::new(2.0, 3.0);
        assert_eq!(
            r.at(Point::new(10.0, 10.0)),
            Rect::from_coords(8.0, 7.0, 12.0, 13.0)
        );
        let s = RangeSpec::square(5.0);
        assert_eq!(s.w, s.h);
    }

    #[test]
    #[should_panic]
    fn range_spec_rejects_negative() {
        let _ = RangeSpec::new(-1.0, 1.0);
    }

    #[test]
    fn issuer_uniform_has_catalog() {
        let iss = Issuer::uniform(Rect::from_coords(0.0, 0.0, 100.0, 100.0));
        assert_eq!(iss.catalog().len(), 6);
        assert_eq!(iss.region(), Rect::from_coords(0.0, 0.0, 100.0, 100.0));
        assert!(iss.pdf().uniform_region().is_some());
    }

    #[test]
    fn set_pdf_rebuilds_the_catalog_in_place() {
        let mut iss = Issuer::uniform(Rect::from_coords(0.0, 0.0, 100.0, 100.0));
        let target = Rect::from_coords(40.0, 10.0, 90.0, 70.0);
        iss.set_pdf(UniformPdf::new(target));
        let fresh = Issuer::uniform(target);
        assert_eq!(iss.region(), target);
        assert_eq!(iss.catalog(), fresh.catalog());
        // Works across pdf kinds too.
        iss.set_pdf(TruncatedGaussianPdf::paper_default(target));
        assert_eq!(iss.catalog(), Issuer::gaussian(target).catalog());
    }

    #[test]
    fn issuer_gaussian() {
        let iss = Issuer::gaussian(Rect::from_coords(0.0, 0.0, 60.0, 60.0));
        assert!(iss.pdf().uniform_region().is_none());
        // Gaussian p-bounds are strictly inside the region for p > 0.
        let b = iss.catalog().best_at_most(0.3);
        assert!(iss.region().contains_rect(b.rect));
        assert!(b.rect.area() < iss.region().area());
    }

    #[test]
    fn issuer_custom_levels() {
        let iss = Issuer::with_pdf_and_levels(
            UniformPdf::new(Rect::from_coords(0.0, 0.0, 10.0, 10.0)),
            &[0.25, 0.5],
        );
        let levels: Vec<f64> = iss.catalog().levels().collect();
        assert_eq!(levels, vec![0.0, 0.25, 0.5]);
    }
}
