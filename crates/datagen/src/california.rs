//! California-like point set: road polylines + urban clusters + rural
//! background.
//!
//! TIGER's California point data is dominated by features strung along
//! road networks and concentrated around population centres. We imitate
//! that structure with three mixture components:
//!
//! * **roads** (50 %) — points jittered along random-walk polylines;
//! * **cities** (35 %) — Gaussian blobs of widely varying radius;
//! * **rural** (15 %) — uniform background noise.
//!
//! The exact proportions are not load-bearing for the experiments; what
//! matters is heavy spatial skew (so R-tree pruning behaves as on real
//! data) at the paper's cardinality.

use iloc_geometry::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr_normal::sample_normal;

use crate::SPACE;

/// Generates `n` points (use [`crate::CALIFORNIA_SIZE`] for the paper's
/// cardinality). Deterministic in `seed`.
pub fn california_points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pts = Vec::with_capacity(n);

    let n_road = n / 2;
    let n_city = n * 35 / 100;
    let n_rural = n - n_road - n_city;

    // Roads: ~40 polylines, each a jittered random walk.
    let roads = 40;
    let per_road = n_road.div_ceil(roads);
    'outer: for _ in 0..roads {
        let mut x = rng.gen_range(SPACE.min.x..SPACE.max.x);
        let mut y = rng.gen_range(SPACE.min.y..SPACE.max.y);
        // Persistent heading with slow drift makes road-like curves.
        let mut heading = rng.gen_range(0.0..std::f64::consts::TAU);
        for _ in 0..per_road {
            if pts.len() >= n_road {
                break 'outer;
            }
            heading += sample_normal(&mut rng) * 0.15;
            let step = rng.gen_range(5.0..25.0);
            x += step * heading.cos();
            y += step * heading.sin();
            // Reflect at the borders to stay inside the space.
            if !(SPACE.min.x..=SPACE.max.x).contains(&x) {
                heading = std::f64::consts::PI - heading;
                x = x.clamp(SPACE.min.x, SPACE.max.x);
            }
            if !(SPACE.min.y..=SPACE.max.y).contains(&y) {
                heading = -heading;
                y = y.clamp(SPACE.min.y, SPACE.max.y);
            }
            let jx = sample_normal(&mut rng) * 8.0;
            let jy = sample_normal(&mut rng) * 8.0;
            pts.push(clamped(x + jx, y + jy));
        }
    }

    // Cities: 25 Gaussian blobs with skewed radii (a few big metros).
    let cities = 25;
    let centers: Vec<(f64, f64, f64)> = (0..cities)
        .map(|_| {
            let cx = rng.gen_range(SPACE.min.x..SPACE.max.x);
            let cy = rng.gen_range(SPACE.min.y..SPACE.max.y);
            // Radius skew: most towns small, some metros large.
            let r = 30.0 * (1.0 + rng.gen_range(0.0f64..1.0).powi(3) * 12.0);
            (cx, cy, r)
        })
        .collect();
    for k in 0..n_city {
        let (cx, cy, r) = centers[k % cities];
        let x = cx + sample_normal(&mut rng) * r;
        let y = cy + sample_normal(&mut rng) * r;
        pts.push(clamped(x, y));
    }

    // Rural background.
    for _ in 0..n_rural {
        pts.push(Point::new(
            rng.gen_range(SPACE.min.x..SPACE.max.x),
            rng.gen_range(SPACE.min.y..SPACE.max.y),
        ));
    }

    debug_assert_eq!(pts.len(), n);
    pts
}

fn clamped(x: f64, y: f64) -> Point {
    Point::new(
        x.clamp(SPACE.min.x, SPACE.max.x),
        y.clamp(SPACE.min.y, SPACE.max.y),
    )
}

/// Minimal Box–Muller standard-normal sampler, local to datagen so the
/// workspace does not need a distributions crate.
mod rand_distr_normal {
    use rand::Rng;

    /// One standard-normal draw.
    pub fn sample_normal(rng: &mut impl Rng) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

pub(crate) use rand_distr_normal::sample_normal as normal_draw;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CALIFORNIA_SIZE;

    #[test]
    fn exact_cardinality_and_bounds() {
        let pts = california_points(10_000, 42);
        assert_eq!(pts.len(), 10_000);
        assert!(pts.iter().all(|p| SPACE.contains_point(*p)));
    }

    #[test]
    fn deterministic_in_seed() {
        let a = california_points(1_000, 7);
        let b = california_points(1_000, 7);
        assert_eq!(a, b);
        let c = california_points(1_000, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn full_size_dataset_generates() {
        let pts = california_points(CALIFORNIA_SIZE, 1);
        assert_eq!(pts.len(), CALIFORNIA_SIZE);
    }

    #[test]
    fn data_is_spatially_skewed() {
        // Chop the space into a 10×10 grid: a skewed dataset has much
        // higher variance of per-cell counts than a uniform one would
        // (uniform: mean≈count/100, std≈sqrt(mean)).
        let pts = california_points(20_000, 3);
        let mut counts = [0usize; 100];
        for p in &pts {
            let i = ((p.x / 1_000.0) as usize).min(9);
            let j = ((p.y / 1_000.0) as usize).min(9);
            counts[j * 10 + i] += 1;
        }
        let mean = 200.0f64;
        let var = counts
            .iter()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / 100.0;
        // Uniform data would have var ≈ mean (Poisson); demand 5× that.
        assert!(var > 5.0 * mean, "variance {var} too close to uniform");
    }

    #[test]
    fn normal_sampler_moments() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1);
        const N: usize = 100_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..N {
            let z = normal_draw(&mut rng);
            sum += z;
            sumsq += z * z;
        }
        let mean = sum / N as f64;
        let var = sumsq / N as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
