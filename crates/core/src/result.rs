//! Query answers.

use iloc_uncertainty::ObjectId;

use crate::stats::QueryStats;

/// One qualifying object with its qualification probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Match {
    /// The object's identifier.
    pub id: ObjectId,
    /// Qualification probability `pi` (paper Definitions 3–6): strictly
    /// positive for IPQ/IUQ, at least the threshold for C-IPQ/C-IUQ.
    pub probability: f64,
}

/// The result of one imprecise query: qualifying objects plus cost
/// accounting.
#[derive(Debug, Clone, Default)]
pub struct QueryAnswer {
    /// Matches, sorted by object id.
    pub results: Vec<Match>,
    /// Per-query cost counters.
    pub stats: QueryStats,
}

impl QueryAnswer {
    /// Looks up the probability reported for an object, if present.
    pub fn probability_of(&self, id: ObjectId) -> Option<f64> {
        self.results
            .binary_search_by(|m| m.id.cmp(&id))
            .ok()
            .map(|i| self.results[i].probability)
    }

    /// `true` when `other` reports exactly the same matches: same ids
    /// in the same order with **bit-identical** probabilities. Stats
    /// are not compared. This is the determinism contract batched,
    /// cached, and re-executed plans are tested against.
    pub fn same_matches(&self, other: &QueryAnswer) -> bool {
        self.results.len() == other.results.len()
            && self
                .results
                .iter()
                .zip(&other.results)
                .all(|(a, b)| a.id == b.id && a.probability.to_bits() == b.probability.to_bits())
    }

    /// Sorts matches by id; used by the non-pipeline paths (e.g. NN
    /// queries). The pipeline hot path goes through [`sort_matches`].
    pub(crate) fn finalize(&mut self) {
        self.results.sort_unstable_by_key(|m| m.id);
    }
}

/// Sorts matches by id on the hot path. Unstable sort on purpose: ids
/// are unique (one match per object), so the order is fully determined
/// — and the standard library's *stable* sort would heap-allocate its
/// merge buffer on the otherwise allocation-free steady-state path.
/// The pre-check skips the sort entirely for the common case of an
/// index filter that emitted candidates in id order.
///
/// Public because this is the **fan-in merge discipline**: any layer
/// that scatters a query across disjoint id partitions — in-process
/// shards ([`serve::ShardedEngine`](crate::serve::ShardedEngine)) or
/// remote cluster nodes behind a router — concatenates the partial
/// results and re-establishes id order with exactly this call, so the
/// merged answer is bit-identical to a single-partition evaluation.
pub fn sort_matches(v: &mut [Match]) {
    if v.windows(2).all(|w| w[0].id <= w[1].id) {
        return;
    }
    v.sort_unstable_by_key(|m| m.id);
}

/// Fans partial answers from disjoint id partitions into `out`:
/// clear, concatenate, re-sort by id. Capacity is retained, so a warm
/// `out` makes the merge allocation-free once it has grown to workload
/// size — the property both the sharded engine and the cluster
/// router's scatter-gather hot path are gated on.
pub fn merge_partials_into<'a, I>(out: &mut QueryAnswer, partials: I)
where
    I: IntoIterator<Item = &'a [Match]>,
{
    out.results.clear();
    out.stats = Default::default();
    for part in partials {
        out.results.extend_from_slice(part);
    }
    sort_matches(&mut out.results);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_lookup() {
        let mut a = QueryAnswer::default();
        a.results.push(Match {
            id: ObjectId(5),
            probability: 0.5,
        });
        a.results.push(Match {
            id: ObjectId(2),
            probability: 0.25,
        });
        a.finalize();
        assert_eq!(a.results[0].id, ObjectId(2));
        assert_eq!(a.probability_of(ObjectId(5)), Some(0.5));
        assert_eq!(a.probability_of(ObjectId(9)), None);
    }

    #[test]
    fn scratch_sort_matches_standard_sort() {
        use iloc_uncertainty::ObjectId;
        // Deterministic pseudo-random id streams with runs, duplicates
        // of nothing (unique ids), sorted, reversed, tiny, and empty.
        let cases: Vec<Vec<u64>> = vec![
            vec![],
            vec![7],
            (0..100).collect(),
            (0..100).rev().collect(),
            (0..50).chain(25..80).chain(10..30).collect(),
            (0..500).map(|k: u64| (k * 7919) % 1231).collect(),
        ];
        for ids in cases {
            let mut v: Vec<Match> = ids
                .iter()
                .map(|&id| Match {
                    id: ObjectId(id),
                    probability: id as f64,
                })
                .collect();
            let mut expect = v.clone();
            expect.sort_by_key(|m| m.id);
            sort_matches(&mut v);
            assert_eq!(
                v.iter().map(|m| m.id).collect::<Vec<_>>(),
                expect.iter().map(|m| m.id).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn merge_partials_matches_single_partition_order() {
        use iloc_uncertainty::ObjectId;
        let part = |ids: &[u64]| -> Vec<Match> {
            ids.iter()
                .map(|&id| Match {
                    id: ObjectId(id),
                    probability: id as f64 / 1000.0,
                })
                .collect()
        };
        // Disjoint id partitions, each id-sorted — the shape both the
        // sharded engine and the cluster router hand to the merge.
        let a = part(&[1, 4, 9]);
        let b = part(&[2, 3, 100]);
        let c = part(&[]);
        let mut out = QueryAnswer::default();
        out.results.push(Match {
            id: ObjectId(0),
            probability: 9.9,
        }); // dirty slot
        merge_partials_into(&mut out, [a.as_slice(), b.as_slice(), c.as_slice()]);
        assert_eq!(
            out.results.iter().map(|m| m.id.0).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 9, 100]
        );
        // Idempotent with capacity retained: merging again into the
        // warm buffer gives the same answer.
        let cap = out.results.capacity();
        merge_partials_into(&mut out, [a.as_slice(), b.as_slice(), c.as_slice()]);
        assert_eq!(out.results.len(), 6);
        assert_eq!(out.results.capacity(), cap);
    }

    #[test]
    fn same_matches_compares_ids_and_bits() {
        let answer = |ps: &[(u64, f64)]| QueryAnswer {
            results: ps
                .iter()
                .map(|&(id, p)| Match {
                    id: ObjectId(id),
                    probability: p,
                })
                .collect(),
            ..Default::default()
        };
        let a = answer(&[(1, 0.5), (2, 0.25)]);
        assert!(a.same_matches(&answer(&[(1, 0.5), (2, 0.25)])));
        assert!(!a.same_matches(&answer(&[(1, 0.5)])));
        assert!(!a.same_matches(&answer(&[(1, 0.5), (3, 0.25)])));
        assert!(!a.same_matches(&answer(&[(1, 0.5), (2, 0.25 + 1e-16)])));
        // Stats are irrelevant.
        let mut b = answer(&[(1, 0.5), (2, 0.25)]);
        b.stats.prob_evals = 99;
        assert!(a.same_matches(&b));
    }
}
