//! Query answers.

use iloc_uncertainty::ObjectId;

use crate::stats::QueryStats;

/// One qualifying object with its qualification probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Match {
    /// The object's identifier.
    pub id: ObjectId,
    /// Qualification probability `pi` (paper Definitions 3–6): strictly
    /// positive for IPQ/IUQ, at least the threshold for C-IPQ/C-IUQ.
    pub probability: f64,
}

/// The result of one imprecise query: qualifying objects plus cost
/// accounting.
#[derive(Debug, Clone, Default)]
pub struct QueryAnswer {
    /// Matches, sorted by object id.
    pub results: Vec<Match>,
    /// Per-query cost counters.
    pub stats: QueryStats,
}

impl QueryAnswer {
    /// Looks up the probability reported for an object, if present.
    pub fn probability_of(&self, id: ObjectId) -> Option<f64> {
        self.results
            .binary_search_by(|m| m.id.cmp(&id))
            .ok()
            .map(|i| self.results[i].probability)
    }

    /// `true` when `other` reports exactly the same matches: same ids
    /// in the same order with **bit-identical** probabilities. Stats
    /// are not compared. This is the determinism contract batched,
    /// cached, and re-executed plans are tested against.
    pub fn same_matches(&self, other: &QueryAnswer) -> bool {
        self.results.len() == other.results.len()
            && self
                .results
                .iter()
                .zip(&other.results)
                .all(|(a, b)| a.id == b.id && a.probability.to_bits() == b.probability.to_bits())
    }

    /// Sorts matches by id; called by the engines before returning.
    pub(crate) fn finalize(&mut self) {
        self.results.sort_by_key(|m| m.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_lookup() {
        let mut a = QueryAnswer::default();
        a.results.push(Match {
            id: ObjectId(5),
            probability: 0.5,
        });
        a.results.push(Match {
            id: ObjectId(2),
            probability: 0.25,
        });
        a.finalize();
        assert_eq!(a.results[0].id, ObjectId(2));
        assert_eq!(a.probability_of(ObjectId(5)), Some(0.5));
        assert_eq!(a.probability_of(ObjectId(9)), None);
    }

    #[test]
    fn same_matches_compares_ids_and_bits() {
        let answer = |ps: &[(u64, f64)]| QueryAnswer {
            results: ps
                .iter()
                .map(|&(id, p)| Match {
                    id: ObjectId(id),
                    probability: p,
                })
                .collect(),
            ..Default::default()
        };
        let a = answer(&[(1, 0.5), (2, 0.25)]);
        assert!(a.same_matches(&answer(&[(1, 0.5), (2, 0.25)])));
        assert!(!a.same_matches(&answer(&[(1, 0.5)])));
        assert!(!a.same_matches(&answer(&[(1, 0.5), (3, 0.25)])));
        assert!(!a.same_matches(&answer(&[(1, 0.5), (2, 0.25 + 1e-16)])));
        // Stats are irrelevant.
        let mut b = answer(&[(1, 0.5), (2, 0.25)]);
        b.stats.prob_evals = 99;
        assert!(a.same_matches(&b));
    }
}
