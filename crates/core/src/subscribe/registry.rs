//! The subscription registry: standing queries, their pinned
//! snapshots, and commit-driven wake-up.

use std::collections::HashMap;

use iloc_geometry::Rect;
use iloc_index::{AccessStats, RTree, RTreeParams, RangeIndex};
use iloc_uncertainty::PdfKind;

use crate::integrate::Integrator;
use crate::pipeline::ExecutionContext;
use crate::result::{Match, QueryAnswer};
use crate::serve::{EpochDirt, ShardedEngine, Snapshot};

use super::{eval_from_cache, AnswerDelta, ContinuousEngine};

/// Identifier of one standing query within a registry. Ids are never
/// reused, so a late NOTIFY can never be misattributed to a newer
/// subscription.
pub type SubId = u64;

/// One standing continuous query: its (normalized) request, the safe
/// envelope with its per-shard cached candidates, the pinned snapshot
/// those candidates index into, and the last answer the subscriber
/// saw.
pub struct Subscription<E: ContinuousEngine> {
    id: SubId,
    request: E::Request,
    slack: f64,
    snapshot: Snapshot<E>,
    envelope: Rect,
    /// Slot-sorted envelope candidates, one list per shard of the
    /// pinned snapshot (inner buffers reused across re-probes).
    cached: Vec<Vec<u32>>,
    /// The last answer delivered (id-sorted): the base every delta is
    /// computed against.
    last: Vec<Match>,
    /// Index probes issued for this subscription (≤ evaluations).
    probes: u64,
    /// Evaluations served entirely from the cached envelope.
    cache_hits: u64,
}

impl<E: ContinuousEngine> Subscription<E> {
    /// The (normalized) standing request.
    pub fn request(&self) -> &E::Request {
        &self.request
    }

    /// The current safe-envelope rectangle.
    pub fn envelope(&self) -> Rect {
        self.envelope
    }

    /// The epoch of the pinned snapshot the state reflects.
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch()
    }

    /// The last answer delivered, sorted by id.
    pub fn last_answer(&self) -> &[Match] {
        &self.last
    }

    /// Index probes issued so far.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Evaluations served from the cached envelope so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Rebinds to `snapshot` and re-probes the envelope around the
    /// current filter rectangle.
    fn reprobe(&mut self, snapshot: &Snapshot<E>, ctx: &mut ExecutionContext) {
        let expanded = E::filter_rect(&self.request);
        self.envelope = expanded.expand(self.slack, self.slack);
        self.snapshot = snapshot.clone();
        let shards = snapshot.shards();
        self.cached.resize_with(shards.len(), Vec::new);
        let mut stats = AccessStats::new();
        for (shard, cached) in shards.iter().zip(self.cached.iter_mut()) {
            cached.clear();
            shard.envelope_candidates_into(
                self.envelope,
                &mut stats,
                &mut ctx.scratch.traversal,
                cached,
            );
            // Sorted once per probe: every evaluation's filtered
            // subset then stays slot-sorted, collapsing the pipeline's
            // candidate sort to its linear pre-check.
            cached.sort_unstable();
        }
        self.probes += 1;
    }
}

/// What one [`SubscriptionRegistry::pump`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PumpReport {
    /// Subscriptions re-evaluated (their envelope intersected the
    /// dirty region, or the registry fell behind the dirt history).
    pub woken: usize,
    /// Deltas emitted (woken subscriptions whose answer actually
    /// changed).
    pub notified: usize,
}

/// A registry of standing continuous queries over one
/// [`ShardedEngine`].
///
/// The registry owns every subscription's state plus one shared
/// [`ExecutionContext`] and reusable answer/delta buffers, so a
/// steady-state [`tick`](SubscriptionRegistry::tick) — motion inside
/// the envelope, no intervening commit — performs **zero index probes
/// and zero heap allocations**. Envelope rectangles live in an R-tree
/// stabbing index; [`pump`](SubscriptionRegistry::pump) stabs it with
/// the dirty rectangles of newly committed epochs and re-evaluates
/// only the hits.
///
/// A registry serves one consumer (the network layer keeps one per
/// connection); it is `Send` but not shared.
pub struct SubscriptionRegistry<E: ContinuousEngine> {
    subs: Vec<Option<Subscription<E>>>,
    free: Vec<u32>,
    by_id: HashMap<SubId, u32>,
    /// Stabbing index: envelope rectangle → subscription slot.
    envelopes: RTree<u32>,
    next_id: SubId,
    /// Epochs whose dirt has been fully processed.
    seen_epoch: u64,
    live: usize,
    ctx: ExecutionContext,
    partial: QueryAnswer,
    fresh: QueryAnswer,
    delta: AnswerDelta,
    dirt: Vec<EpochDirt>,
    stab: Vec<u32>,
}

impl<E: ContinuousEngine> Default for SubscriptionRegistry<E> {
    fn default() -> Self {
        SubscriptionRegistry::new()
    }
}

impl<E: ContinuousEngine> SubscriptionRegistry<E> {
    /// An empty registry with cold buffers.
    pub fn new() -> Self {
        SubscriptionRegistry {
            subs: Vec::new(),
            free: Vec::new(),
            by_id: HashMap::new(),
            envelopes: RTree::new(RTreeParams::default()),
            next_id: 1,
            seen_epoch: 0,
            live: 0,
            ctx: ExecutionContext::new(Integrator::Auto),
            partial: QueryAnswer::default(),
            fresh: QueryAnswer::default(),
            delta: AnswerDelta::new(),
            dirt: Vec::new(),
            stab: Vec::new(),
        }
    }

    /// Number of live subscriptions.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no subscription is registered.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The newest epoch whose dirt this registry has processed.
    pub fn seen_epoch(&self) -> u64 {
        self.seen_epoch
    }

    /// `true` when [`SubscriptionRegistry::pump`] would do real work:
    /// something stands and the engine has published past what this
    /// registry has seen. One length check plus one atomic epoch load —
    /// cheap enough for an event loop to ask per connection per tick
    /// while sweeping tens of thousands of mostly-idle subscribers.
    pub fn needs_pump(&self, engine: &ShardedEngine<E>) -> bool {
        self.live != 0 && engine.epoch() > self.seen_epoch
    }

    /// The subscription with this id, if live.
    pub fn get(&self, id: SubId) -> Option<&Subscription<E>> {
        let &slot = self.by_id.get(&id)?;
        self.subs[slot as usize].as_ref()
    }

    /// Registers a standing query against the engine's current epoch;
    /// returns its id. The request is normalized to the envelope plan
    /// (see the module docs) and evaluated immediately —
    /// [`Subscription::last_answer`] holds the initial full answer to
    /// hand the subscriber.
    ///
    /// `slack` is the envelope margin in space units: larger values
    /// mean fewer index probes under motion but more cached candidates
    /// to re-filter per tick; `slack = 0` degenerates to one probe per
    /// tick.
    ///
    /// # Panics
    ///
    /// Panics when `slack` is negative or non-finite (the network
    /// layer validates this at the decode boundary instead).
    pub fn subscribe(
        &mut self,
        engine: &ShardedEngine<E>,
        mut request: E::Request,
        slack: f64,
    ) -> SubId {
        assert!(
            slack >= 0.0 && slack.is_finite(),
            "subscription slack must be finite and ≥ 0"
        );
        E::normalize_request(&mut request);
        let snapshot = engine.snapshot();
        if self.live == 0 {
            // Nothing stands yet: older epochs' dirt concerns nobody.
            self.seen_epoch = snapshot.epoch();
        }
        let id = self.next_id;
        self.next_id += 1;

        let mut sub = Subscription {
            id,
            request,
            slack,
            snapshot: snapshot.clone(),
            envelope: Rect::EMPTY,
            cached: Vec::new(),
            last: Vec::new(),
            probes: 0,
            cache_hits: 0,
        };
        sub.reprobe(&snapshot, &mut self.ctx);
        eval_from_cache(
            &snapshot,
            &sub.request,
            &sub.cached,
            &mut self.ctx,
            &mut self.partial,
            &mut self.fresh,
        );
        sub.last.extend_from_slice(&self.fresh.results);

        let slot = match self.free.pop() {
            Some(slot) => {
                self.subs[slot as usize] = Some(sub);
                slot
            }
            None => {
                self.subs.push(Some(sub));
                (self.subs.len() - 1) as u32
            }
        };
        let envelope = self.subs[slot as usize]
            .as_ref()
            .expect("just stored")
            .envelope;
        self.envelopes.insert(envelope, slot);
        self.by_id.insert(id, slot);
        self.live += 1;
        id
    }

    /// Drops a standing query; `true` when it existed.
    pub fn unsubscribe(&mut self, id: SubId) -> bool {
        let Some(slot) = self.by_id.remove(&id) else {
            return false;
        };
        let sub = self.subs[slot as usize].take().expect("live slot");
        let removed = self.envelopes.remove(sub.envelope, slot);
        debug_assert!(removed, "stab index out of sync");
        self.free.push(slot);
        self.live -= 1;
        true
    }

    /// Drops every subscription, keeping the registry's warm buffers
    /// (what a serving worker does between connections).
    pub fn clear(&mut self) {
        self.subs.clear();
        self.free.clear();
        self.by_id.clear();
        self.envelopes = RTree::new(RTreeParams::default());
        self.live = 0;
        self.seen_epoch = 0;
    }

    /// Moves a subscription's issuer and re-evaluates, returning the
    /// epoch the state reflects and the delta against the last
    /// delivered answer (possibly empty). `None` when the id is
    /// unknown.
    ///
    /// A tick whose expanded query stays inside the safe envelope is
    /// served entirely from the cached candidates of the pinned
    /// snapshot — zero index probes, zero heap allocations once warm.
    /// Motion past the envelope rebinds to the engine's current epoch
    /// and re-probes.
    pub fn tick(
        &mut self,
        engine: &ShardedEngine<E>,
        id: SubId,
        pdf: PdfKind,
    ) -> Option<(u64, &AnswerDelta)> {
        let &slot = self.by_id.get(&id)?;
        let sub = self.subs[slot as usize].as_mut().expect("live slot");
        E::set_issuer_pdf(&mut sub.request, pdf);
        let expanded = E::filter_rect(&sub.request);
        if sub.envelope.contains_rect(expanded) {
            sub.cache_hits += 1;
        } else {
            let old = sub.envelope;
            sub.reprobe(&engine.snapshot(), &mut self.ctx);
            let removed = self.envelopes.remove(old, slot);
            debug_assert!(removed, "stab index out of sync");
            self.envelopes.insert(sub.envelope, slot);
        }
        eval_from_cache(
            &sub.snapshot,
            &sub.request,
            &sub.cached,
            &mut self.ctx,
            &mut self.partial,
            &mut self.fresh,
        );
        AnswerDelta::diff_into(&sub.last, &self.fresh.results, &mut self.delta);
        sub.last.clear();
        sub.last.extend_from_slice(&self.fresh.results);
        Some((sub.snapshot.epoch(), &self.delta))
    }

    /// Processes every epoch committed since the last pump: the merged
    /// dirty rectangle stabs the envelope index, the hit subscriptions
    /// rebind to the current epoch and re-evaluate, and `emit` is
    /// called with `(id, epoch, delta)` for each one whose answer
    /// changed. Subscriptions the dirt missed do **no work at all**.
    ///
    /// Falling more than the engine's dirt history behind degrades
    /// gracefully: every subscription is re-evaluated.
    pub fn pump(
        &mut self,
        engine: &ShardedEngine<E>,
        mut emit: impl FnMut(SubId, u64, &AnswerDelta),
    ) -> PumpReport {
        let mut report = PumpReport::default();
        if engine.epoch() <= self.seen_epoch {
            return report;
        }
        if self.live == 0 {
            self.seen_epoch = engine.epoch();
            return report;
        }
        self.dirt.clear();
        let gapless = engine.dirt_since(self.seen_epoch, &mut self.dirt);
        // Taken AFTER reading the dirt log: an epoch's dirt is only
        // logged once its snapshot has published, so `current` is
        // guaranteed to cover every entry processed below. (The other
        // order would let a commit land in between — subscriptions
        // would re-evaluate against the older snapshot while
        // `seen_epoch` advanced past the new epoch, silently dropping
        // its notification.)
        let current = engine.snapshot();

        let mut stab = std::mem::take(&mut self.stab);
        stab.clear();
        let covered = if gapless {
            let Some(last) = self.dirt.last() else {
                // The commit has published its epoch but not yet
                // logged its dirt; the next pump picks it up.
                self.stab = stab;
                return report;
            };
            debug_assert!(last.epoch <= current.epoch(), "dirt logged before publish");
            // One stab per epoch, deduped — never a cross-epoch hull:
            // two small commits at opposite corners of the domain must
            // not wake every subscription standing in the rectangle
            // between them.
            let mut stats = AccessStats::new();
            for dirt in &self.dirt {
                if let Some(d) = dirt.dirty {
                    self.envelopes.query_range_scratch(
                        d,
                        &mut stats,
                        &mut self.ctx.scratch.traversal,
                        &mut stab,
                    );
                }
            }
            stab.sort_unstable();
            stab.dedup();
            last.epoch
        } else {
            // Behind the bounded history: conservatively wake all.
            stab.extend(
                self.subs
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.is_some())
                    .map(|(k, _)| k as u32),
            );
            current.epoch()
        };

        for &slot in &stab {
            let Some(sub) = self.subs[slot as usize].as_mut() else {
                continue;
            };
            if sub.snapshot.epoch() >= covered {
                // Already rebound past everything processed here (a
                // tick re-probed mid-span).
                continue;
            }
            report.woken += 1;
            let old_envelope = sub.envelope;
            sub.reprobe(&current, &mut self.ctx);
            if sub.envelope != old_envelope {
                // The envelope re-centers on wherever the issuer has
                // drifted to; the stab index must follow.
                let removed = self.envelopes.remove(old_envelope, slot);
                debug_assert!(removed, "stab index out of sync");
                self.envelopes.insert(sub.envelope, slot);
            }
            eval_from_cache(
                &current,
                &sub.request,
                &sub.cached,
                &mut self.ctx,
                &mut self.partial,
                &mut self.fresh,
            );
            AnswerDelta::diff_into(&sub.last, &self.fresh.results, &mut self.delta);
            if !self.delta.is_empty() {
                sub.last.clear();
                sub.last.extend_from_slice(&self.fresh.results);
                report.notified += 1;
                emit(sub.id, current.epoch(), &self.delta);
            }
        }
        self.stab = stab;
        self.seen_epoch = covered;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::PointEngine;
    use crate::pipeline::PointRequest;
    use crate::query::{Issuer, RangeSpec};
    use crate::serve::Update;
    use iloc_geometry::Point;
    use iloc_uncertainty::{ObjectId, PointObject};

    fn engine(shards: usize) -> ShardedEngine<PointEngine> {
        let objects = (0..400u64)
            .map(|k| {
                PointObject::new(
                    k,
                    Point::new((k % 20) as f64 * 50.0, (k / 20) as f64 * 50.0),
                )
            })
            .collect();
        ShardedEngine::build(objects, shards)
    }

    fn request_at(x: f64, y: f64) -> PointRequest {
        PointRequest::ipq(
            Issuer::uniform(Rect::centered(Point::new(x, y), 40.0, 40.0)),
            RangeSpec::square(80.0),
        )
    }

    #[test]
    fn subscribe_answers_match_snapshot_execution() {
        let engine = engine(4);
        let mut registry: SubscriptionRegistry<PointEngine> = SubscriptionRegistry::new();
        let request = request_at(500.0, 500.0);
        let id = registry.subscribe(&engine, request.clone(), 100.0);
        let want = engine.snapshot().execute_one(&request);
        assert!(!want.results.is_empty());
        let got = registry.get(id).unwrap().last_answer();
        assert_eq!(got.len(), want.results.len());
        for (a, b) in got.iter().zip(&want.results) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.probability.to_bits(), b.probability.to_bits());
        }
    }

    #[test]
    fn steady_ticks_probe_nothing() {
        let engine = engine(2);
        let mut registry: SubscriptionRegistry<PointEngine> = SubscriptionRegistry::new();
        let id = registry.subscribe(&engine, request_at(500.0, 500.0), 150.0);
        assert_eq!(registry.get(id).unwrap().probes(), 1);
        for k in 0..50u64 {
            // A drifting walk that never escapes the envelope.
            let request = request_at(500.0 + (k % 5) as f64, 500.0);
            let (_, delta) = registry
                .tick(&engine, id, request.issuer.pdf().clone())
                .unwrap();
            let _ = delta;
        }
        let sub = registry.get(id).unwrap();
        assert_eq!(sub.probes(), 1, "steady ticks must not probe the index");
        assert_eq!(sub.cache_hits(), 50);
    }

    #[test]
    fn escaping_the_envelope_reprobes_and_restabs() {
        let engine = engine(2);
        let mut registry: SubscriptionRegistry<PointEngine> = SubscriptionRegistry::new();
        let id = registry.subscribe(&engine, request_at(200.0, 200.0), 50.0);
        let far = request_at(800.0, 800.0);
        let (_, _) = registry
            .tick(&engine, id, far.issuer.pdf().clone())
            .unwrap();
        assert_eq!(registry.get(id).unwrap().probes(), 2);
        // The stab index follows: a commit near the new position wakes
        // the subscription.
        engine.submit(Update::Arrive(PointObject::new(
            9_000u64,
            Point::new(801.0, 801.0),
        )));
        engine.commit();
        let mut woken = Vec::new();
        registry.pump(&engine, |id, _, delta| woken.push((id, delta.clone())));
        assert_eq!(woken.len(), 1);
        assert_eq!(woken[0].0, id);
        assert_eq!(woken[0].1.upserts.len(), 1);
        assert_eq!(woken[0].1.upserts[0].id, ObjectId(9_000));
    }

    #[test]
    fn pump_skips_unaffected_subscriptions() {
        let engine = engine(4);
        let mut registry: SubscriptionRegistry<PointEngine> = SubscriptionRegistry::new();
        let near = registry.subscribe(&engine, request_at(100.0, 100.0), 60.0);
        let far = registry.subscribe(&engine, request_at(900.0, 900.0), 60.0);
        let probes_before = registry.get(far).unwrap().probes();

        engine.submit(Update::Depart(ObjectId(42))); // (100, 100)
        let report = engine.commit();
        assert!(report.dirty.is_some());

        let mut woken = Vec::new();
        let pump = registry.pump(&engine, |id, _, _| woken.push(id));
        assert_eq!(pump.woken, 1);
        assert_eq!(woken, vec![near]);
        // The far subscription did no work at all.
        assert_eq!(registry.get(far).unwrap().probes(), probes_before);
        assert_eq!(registry.seen_epoch(), 1);
    }

    #[test]
    fn multi_epoch_pump_stabs_per_commit_not_a_cross_epoch_hull() {
        let engine = engine(4);
        let mut registry: SubscriptionRegistry<PointEngine> = SubscriptionRegistry::new();
        // Standing in the middle of the domain, between two commits at
        // opposite corners.
        let middle = registry.subscribe(&engine, request_at(450.0, 450.0), 40.0);
        let corner = registry.subscribe(&engine, request_at(50.0, 50.0), 40.0);
        let probes_before = registry.get(middle).unwrap().probes();

        // Two epochs land before one pump: their hull would cover the
        // whole domain, but neither commit touches the middle.
        engine.submit(Update::Depart(ObjectId(0))); // (0, 0)
        engine.commit();
        engine.submit(Update::Depart(ObjectId(399))); // (950, 950)
        engine.commit();

        let report = registry.pump(&engine, |_, _, _| {});
        assert_eq!(report.woken, 1, "only the corner subscription wakes");
        assert_eq!(
            registry.get(middle).unwrap().probes(),
            probes_before,
            "the middle subscription must not be woken by the hull of two corner commits"
        );
        assert!(registry.get(corner).unwrap().probes() > 1);
        assert_eq!(registry.seen_epoch(), 2);
    }

    #[test]
    fn unsubscribe_stops_wakeups_and_ids_are_not_reused() {
        let engine = engine(2);
        let mut registry: SubscriptionRegistry<PointEngine> = SubscriptionRegistry::new();
        let a = registry.subscribe(&engine, request_at(300.0, 300.0), 80.0);
        assert!(registry.unsubscribe(a));
        assert!(!registry.unsubscribe(a));
        assert!(registry.is_empty());
        let b = registry.subscribe(&engine, request_at(300.0, 300.0), 80.0);
        assert_ne!(a, b);

        engine.submit(Update::Depart(ObjectId(126))); // (300, 300)
        engine.commit();
        let mut woken = Vec::new();
        registry.pump(&engine, |id, _, _| woken.push(id));
        assert_eq!(woken, vec![b]);
        assert!(registry
            .tick(&engine, a, request_at(0.0, 0.0).issuer.pdf().clone())
            .is_none());
    }

    #[test]
    #[should_panic(expected = "slack")]
    fn subscribe_rejects_nan_slack() {
        let engine = engine(1);
        let mut registry: SubscriptionRegistry<PointEngine> = SubscriptionRegistry::new();
        registry.subscribe(&engine, request_at(0.0, 0.0), f64::NAN);
    }
}
