//! Special functions needed by the Gaussian uncertainty pdf.
//!
//! Implemented from scratch (no external numerics crate): `erf` via its
//! Maclaurin series for small arguments and `erfc` via a continued
//! fraction (modified Lentz) for large ones — accurate to ~1e-13
//! everywhere, far beyond what probability thresholds quantised to 0.1
//! require — plus the standard normal CDF built on top.

/// Crossover between the `erf` series and the `erfc` continued fraction.
/// At 2.0 the series still converges quickly with little cancellation
/// and the Laplace continued fraction already converges in a few dozen
/// terms.
const ERF_SERIES_CUTOFF: f64 = 2.0;

/// Error function `erf(x)`.
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        return -erf(-x);
    }
    if x <= ERF_SERIES_CUTOFF {
        erf_series(x)
    } else {
        1.0 - erfc_cf(x)
    }
}

/// Complementary error function `erfc(x)`.
///
/// Uses the continued fraction directly for large positive `x`, where
/// `1 − erf(x)` would lose all precision to cancellation.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x <= ERF_SERIES_CUTOFF {
        1.0 - erf_series(x)
    } else {
        erfc_cf(x)
    }
}

/// Maclaurin series `erf(x) = (2/√π) Σ (−1)ⁿ x^{2n+1} / (n! (2n+1))`,
/// valid (and fast) for `|x| ≤ 2`.
fn erf_series(x: f64) -> f64 {
    let x2 = x * x;
    let mut term = x; // x^{2n+1} (−1)ⁿ / n!  at n = 0
    let mut sum = x; // term / (2n+1)        accumulated
    for n in 1..200 {
        term *= -x2 / n as f64;
        let delta = term / (2 * n + 1) as f64;
        sum += delta;
        if delta.abs() < 1e-17 * sum.abs().max(1e-300) {
            break;
        }
    }
    sum * std::f64::consts::FRAC_2_SQRT_PI
}

/// Laplace continued fraction
/// `erfc(x) = (e^{−x²}/√π) · 1/(x + (1/2)/(x + 1/(x + (3/2)/(x + 2/(x + …)))))`
/// evaluated by the modified Lentz algorithm. Valid for `x ≥ 1`; used
/// here for `x > 2`.
fn erfc_cf(x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut f = TINY;
    let mut c = f;
    let mut d = 0.0_f64;
    for n in 1..300 {
        // a₁ = 1, aₙ = (n−1)/2 for n ≥ 2; bₙ = x throughout.
        let a = if n == 1 { 1.0 } else { (n - 1) as f64 / 2.0 };
        d = x + a * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = x + a / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x * x).exp() / std::f64::consts::PI.sqrt() * f
}

/// Standard normal cumulative distribution function `Φ(z)`.
#[inline]
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

/// Standard normal density `φ(z) = e^{−z²/2} / √(2π)`.
#[inline]
pub fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Inverts a monotone non-decreasing function `f` on `[lo, hi]` by
/// bisection: returns `x` with `f(x) ≈ target`.
///
/// Used to derive pdf quantiles (and hence p-bounds) from marginal
/// CDFs without requiring each pdf to provide an analytic inverse.
/// Runs a fixed 80 iterations, which drives the bracket below 1e-18
/// of its initial width — far finer than any coordinate in the
/// 10 000 × 10 000 data space requires.
pub fn invert_monotone(f: impl Fn(f64) -> f64, lo: f64, hi: f64, target: f64) -> f64 {
    debug_assert!(lo <= hi);
    let mut lo = lo;
    let mut hi = hi;
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        // Reference values from standard tables.
        assert!((erf(0.0)).abs() < 1e-15);
        assert!((erf(1.0) - 0.842_700_792_949_714_9).abs() < 1e-12);
        assert!((erf(2.0) - 0.995_322_265_018_952_7).abs() < 1e-12);
        assert!((erf(-1.0) + 0.842_700_792_949_714_9).abs() < 1e-12);
        // Large-argument branch (continued fraction).
        assert!((erfc(3.0) - 2.209_049_699_858_544e-5).abs() < 1e-17);
        assert!((erfc(4.0) - 1.541_725_790_028_002e-8).abs() < 1e-20);
        // Branches agree at the crossover (erfc(2) via the series
        // branch; the reference value is 1 − erf(2) computed exactly).
        assert!((erfc(2.0) - 0.004_677_734_981_047_266).abs() < 1e-14);
    }

    #[test]
    fn erfc_complements_erf() {
        for &x in &[-3.0, -0.5, 0.0, 0.7, 2.5] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((normal_cdf(1.0) - 0.8413447461).abs() < 1e-6);
        assert!((normal_cdf(-1.96) - 0.0249978951).abs() < 1e-6);
        assert!(normal_cdf(8.0) > 0.999_999_99);
        assert!(normal_cdf(-8.0) < 1e-8);
    }

    #[test]
    fn normal_cdf_is_monotone() {
        let mut prev = 0.0;
        for k in -40..=40 {
            let v = normal_cdf(k as f64 / 10.0);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn invert_monotone_recovers_quantile() {
        // Invert Φ at 0.975 → 1.9600 (two-sided 95%).
        let z = invert_monotone(normal_cdf, -10.0, 10.0, 0.975);
        assert!((z - 1.959964).abs() < 1e-4);
        // Invert identity.
        let x = invert_monotone(|v| v, 0.0, 1.0, 0.25);
        assert!((x - 0.25).abs() < 1e-12);
    }
}
