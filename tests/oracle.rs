//! Monte-Carlo oracle differential suite.
//!
//! The pipeline's answers come out of query expansion, duality and
//! closed-form / numeric integration. The oracle
//! (`iloc::core::eval::oracle`) computes the same qualification
//! probabilities by *simulating the probability model directly* —
//! sampling the issuer's (and object's) true position from the pdfs
//! and counting range hits — sharing none of that machinery. Here the
//! two are compared on randomized scenes within a binomial tolerance:
//! any systematic disagreement means a pipeline bug.
//!
//! Everything is seeded: scenes, oracle draws (one derived seed per
//! object) and engines are deterministic, so a failure reproduces
//! exactly.

use iloc::core::eval::oracle::{
    binomial_tolerance, mc_point_probability, mc_uncertain_probability,
};
use iloc::core::pipeline::PointRequest;
use iloc::core::serve::ShardedEngine;
use iloc::prelude::*;
use iloc::uncertainty::{TruncatedGaussianPdf, UncertainObject, UniformPdf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Oracle draws per probability estimate.
const SAMPLES: u32 = 12_000;
/// Confidence width in binomial standard deviations. At `z = 5` a
/// correct pipeline fails one comparison in ~3.5 million; the suite
/// makes a few hundred.
const Z: f64 = 5.0;

/// One deterministic oracle seed per (scene, object) pair.
fn oracle_seed(scene: u64, object: u64) -> u64 {
    scene.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ object
}

/// Points clustered where the issuer's expanded query will land, so
/// candidate probabilities cover the whole (0, 1] range.
fn scene_points(rng: &mut StdRng, n: usize) -> Vec<Point> {
    (0..n)
        .map(|_| Point::new(rng.gen_range(200.0..800.0), rng.gen_range(200.0..800.0)))
        .collect()
}

/// A random issuer near the scene's centre — uniform pdf on even
/// scenes, truncated Gaussian on odd ones.
fn scene_issuer(rng: &mut StdRng, scene: u64) -> Issuer {
    let c = Point::new(rng.gen_range(400.0..600.0), rng.gen_range(400.0..600.0));
    let w = rng.gen_range(40.0..150.0);
    let h = rng.gen_range(40.0..150.0);
    let region = Rect::centered(c, w, h);
    if scene.is_multiple_of(2) {
        Issuer::uniform(region)
    } else {
        Issuer::with_pdf(TruncatedGaussianPdf::paper_default(region))
    }
}

#[test]
fn ipq_agrees_with_oracle_on_randomized_scenes() {
    for scene in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(1_000 + scene);
        let points = scene_points(&mut rng, 120);
        let engine = PointEngine::build(points.clone());
        let issuer = scene_issuer(&mut rng, scene);
        let range = RangeSpec::new(rng.gen_range(60.0..200.0), rng.gen_range(60.0..200.0));
        let answer = engine.ipq(&issuer, range);
        assert!(
            !answer.results.is_empty(),
            "scene {scene}: degenerate scene, no candidates"
        );

        for object in engine.objects() {
            let estimate = mc_point_probability(
                &issuer,
                object.loc,
                range,
                SAMPLES,
                oracle_seed(scene, object.id.0),
            );
            let reported = answer.probability_of(object.id).unwrap_or(0.0);
            let tol = binomial_tolerance(estimate, SAMPLES, Z);
            assert!(
                (reported - estimate).abs() <= tol,
                "scene {scene}, object {}: pipeline {reported} vs oracle {estimate} (tol {tol})",
                object.id
            );
        }
    }
}

#[test]
fn iuq_agrees_with_oracle_on_randomized_scenes() {
    for scene in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(2_000 + scene);
        let objects: Vec<UncertainObject> = scene_points(&mut rng, 60)
            .into_iter()
            .enumerate()
            .map(|(k, c)| {
                let w = rng.gen_range(5.0..40.0);
                let h = rng.gen_range(5.0..40.0);
                let region = Rect::centered(c, w, h);
                if k % 3 == 0 {
                    UncertainObject::new(k as u64, TruncatedGaussianPdf::paper_default(region))
                } else {
                    UncertainObject::new(k as u64, UniformPdf::new(region))
                }
            })
            .collect();
        let engine = UncertainEngine::build(objects);
        let issuer = scene_issuer(&mut rng, scene);
        let range = RangeSpec::new(rng.gen_range(80.0..220.0), rng.gen_range(80.0..220.0));
        let answer = engine.iuq(&issuer, range);
        assert!(
            !answer.results.is_empty(),
            "scene {scene}: degenerate scene, no candidates"
        );

        for object in engine.objects() {
            let estimate = mc_uncertain_probability(
                &issuer,
                object,
                range,
                SAMPLES,
                oracle_seed(scene, object.id.0),
            );
            let reported = answer.probability_of(object.id).unwrap_or(0.0);
            let tol = binomial_tolerance(estimate, SAMPLES, Z);
            assert!(
                (reported - estimate).abs() <= tol,
                "scene {scene}, object {}: pipeline {reported} vs oracle {estimate} (tol {tol})",
                object.id
            );
        }
    }
}

#[test]
fn sharded_snapshots_agree_with_oracle() {
    // The serving layer must not bend probabilities: a fanned-out,
    // id-merged answer checks against the same oracle as a
    // single-engine one.
    let mut rng = StdRng::seed_from_u64(3_000);
    let points = scene_points(&mut rng, 150);
    let objects: Vec<_> = points
        .iter()
        .enumerate()
        .map(|(k, &p)| iloc::uncertainty::PointObject::new(k as u64, p))
        .collect();
    let sharded: ShardedEngine<PointEngine> = ShardedEngine::build(objects, 3);
    let issuer = scene_issuer(&mut rng, 0);
    let range = RangeSpec::square(150.0);
    let answer = sharded
        .snapshot()
        .execute_one(&PointRequest::ipq(issuer.clone(), range));
    assert!(!answer.results.is_empty());

    for (k, &loc) in points.iter().enumerate() {
        let estimate = mc_point_probability(&issuer, loc, range, SAMPLES, oracle_seed(3, k as u64));
        let reported = answer
            .probability_of(iloc::uncertainty::ObjectId(k as u64))
            .unwrap_or(0.0);
        let tol = binomial_tolerance(estimate, SAMPLES, Z);
        assert!(
            (reported - estimate).abs() <= tol,
            "object {k}: sharded {reported} vs oracle {estimate} (tol {tol})"
        );
    }
}
