//! Criterion microbenchmark for Figure 12: C-IUQ R-tree+Minkowski vs
//! PTI+p-expanded across thresholds.

use criterion::{criterion_group, criterion_main, Criterion};
use iloc_bench::{Scale, TestBed};
use iloc_core::{CiuqStrategy, Issuer, RangeSpec};
use iloc_datagen::WorkloadGen;

fn bench(c: &mut Criterion) {
    let bed = TestBed::build(Scale::quick());
    let range = RangeSpec::square(500.0);
    let issuer = Issuer::uniform(WorkloadGen::new(12).issuer_region(250.0));
    let mut group = c.benchmark_group("fig12");
    for qp in [0.0, 0.3, 0.6, 0.9] {
        group.bench_function(format!("rtree_minkowski/qp{qp}"), |b| {
            b.iter(|| {
                bed.long_beach
                    .ciuq(&issuer, range, qp, CiuqStrategy::RTreeMinkowski)
            })
        });
        group.bench_function(format!("pti_p_expanded/qp{qp}"), |b| {
            b.iter(|| {
                bed.long_beach
                    .ciuq(&issuer, range, qp, CiuqStrategy::PtiPExpanded)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
