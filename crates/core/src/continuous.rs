//! Continuous imprecise range queries along a trajectory.
//!
//! The paper evaluates *snapshot* queries; a deployed service evaluates
//! the same query every few seconds as the issuer moves. Re-probing
//! the R-tree at every tick is wasteful when consecutive uncertainty
//! regions overlap heavily, so this module adds the classic *safe
//! envelope* optimisation on top of the paper's pipeline:
//!
//! * on a cache miss, probe the index with the expanded query grown by
//!   a configurable `slack` margin and remember the candidate list;
//! * on subsequent ticks whose expanded query still fits inside the
//!   envelope, skip the index probe entirely and refine from the
//!   cached list — Lemma 1 guarantees no object outside the envelope
//!   can qualify while the query stays inside it.
//!
//! Answers are bit-identical to fresh snapshot evaluation (tests
//! assert this); only the index I/O changes.
//!
//! [`ContinuousIpq`] is the in-process form, borrowing one static
//! [`PointEngine`]. The serving-scale form — standing queries that own
//! epoch snapshots of a dynamic [`crate::serve::ShardedEngine`] and
//! re-evaluate incrementally on commits — is
//! [`crate::subscribe::SubscriptionRegistry`], which shares this
//! module's envelope cache machinery.

use iloc_geometry::Rect;
use iloc_index::AccessStats;

use crate::engine::PointEngine;
use crate::integrate::Integrator;
use crate::pipeline::{
    AcceptPolicy, EvaluatorKind, ExecutionContext, PreparedQuery, PruneChain, QueryPipeline,
};
use crate::query::{Issuer, RangeSpec};
use crate::result::QueryAnswer;
use crate::subscribe::CachedFilter;

/// Stateful runner for a continuous IPQ over a point database.
///
/// The runner owns one [`ExecutionContext`] (and with it the query
/// scratch) plus the envelope's candidate buffer, both reused across
/// [`step`](ContinuousIpq::step) calls — a steady-state tick through
/// [`step_into`](ContinuousIpq::step_into) allocates nothing.
#[derive(Debug)]
pub struct ContinuousIpq<'a> {
    engine: &'a PointEngine,
    range: RangeSpec,
    slack: f64,
    /// The current envelope rectangle, when valid.
    envelope: Option<Rect>,
    /// Candidates of the current envelope (buffer reused across
    /// re-probes).
    cached: Vec<u32>,
    /// Long-lived execution state reused every tick.
    ctx: ExecutionContext,
    /// Index probes actually issued (≤ ticks).
    pub probes: u64,
    /// Ticks served from the cached envelope.
    pub cache_hits: u64,
}

impl<'a> ContinuousIpq<'a> {
    /// Creates a runner. `slack` is the envelope margin in space
    /// units: larger values mean fewer index probes but more cached
    /// candidates to re-filter per tick. `slack = 0` degenerates to
    /// one probe per tick.
    pub fn new(engine: &'a PointEngine, range: RangeSpec, slack: f64) -> Self {
        assert!(slack >= 0.0 && slack.is_finite(), "slack must be ≥ 0");
        ContinuousIpq {
            engine,
            range,
            slack,
            envelope: None,
            cached: Vec::new(),
            ctx: ExecutionContext::new(Integrator::Auto),
            probes: 0,
            cache_hits: 0,
        }
    }

    /// Evaluates the query for the issuer's current uncertainty
    /// region. Equivalent to `engine.ipq(issuer, range)` but reuses
    /// cached candidates while the motion stays inside the envelope.
    pub fn step(&mut self, issuer: &Issuer) -> QueryAnswer {
        let mut answer = QueryAnswer::default();
        self.step_into(issuer, &mut answer);
        answer
    }

    /// Like [`ContinuousIpq::step`], overwriting a caller-owned answer
    /// — the allocation-free form for long-running monitors.
    pub fn step_into(&mut self, issuer: &Issuer, answer: &mut QueryAnswer) {
        let start = std::time::Instant::now();
        let query = PreparedQuery::new(issuer, self.range);
        let expanded = query.expanded;

        let mut probe_stats = AccessStats::new();
        let hit = matches!(&self.envelope, Some(env) if env.contains_rect(expanded));
        if hit {
            self.cache_hits += 1;
        } else {
            let env = expanded.expand(self.slack, self.slack);
            self.cached.clear();
            self.engine.raw_candidates_scratch(
                env,
                &mut probe_stats,
                &mut self.ctx.scratch.traversal,
                &mut self.cached,
            );
            // Keep the envelope sorted once: every tick's filtered
            // subset then stays sorted, so the pipeline's candidate
            // sort reduces to its linear pre-check.
            self.cached.sort_unstable();
            self.probes += 1;
            self.envelope = Some(env);
        }

        // Same pipeline as a snapshot IPQ, with the index probe
        // replaced by the envelope cache (the filter shared with the
        // serving-scale subscription registry).
        QueryPipeline {
            query,
            objects: self.engine.objects(),
            filter: CachedFilter {
                cached: &self.cached,
                objects: self.engine.objects(),
                filter: expanded,
            },
            prune: PruneChain::none(),
            refine: EvaluatorKind::Duality,
            accept: AcceptPolicy::Positive,
        }
        .execute_into(&mut self.ctx, answer);
        // The envelope probe's node visits are real I/O, but its hit
        // count is the *envelope's* candidate set, not this query's —
        // EnvelopeFilter already reported the latter.
        probe_stats.candidates = 0;
        answer.stats.access.absorb(probe_stats);
        answer.stats.elapsed = start.elapsed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc_geometry::Point;

    fn engine() -> PointEngine {
        let mut pts = Vec::new();
        for i in 0..40 {
            for j in 0..40 {
                pts.push(Point::new(i as f64 * 25.0, j as f64 * 25.0));
            }
        }
        PointEngine::build(pts)
    }

    /// A straight-line walk with fixed uncertainty.
    fn walk(ticks: usize) -> Vec<Issuer> {
        (0..ticks)
            .map(|t| {
                let c = Point::new(200.0 + t as f64 * 6.0, 300.0 + t as f64 * 2.5);
                Issuer::uniform(Rect::centered(c, 40.0, 40.0))
            })
            .collect()
    }

    #[test]
    fn continuous_equals_snapshot_at_every_tick() {
        let engine = engine();
        let range = RangeSpec::square(80.0);
        let mut runner = ContinuousIpq::new(&engine, range, 100.0);
        for issuer in walk(60) {
            let cont = runner.step(&issuer);
            let snap = engine.ipq(&issuer, range);
            assert_eq!(cont.results.len(), snap.results.len());
            for (a, b) in cont.results.iter().zip(&snap.results) {
                assert_eq!(a.id, b.id);
                assert!((a.probability - b.probability).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn slack_trades_probes_for_cached_filtering() {
        let engine = engine();
        let range = RangeSpec::square(80.0);

        let mut none = ContinuousIpq::new(&engine, range, 0.0);
        let mut wide = ContinuousIpq::new(&engine, range, 150.0);
        for issuer in walk(60) {
            let _ = none.step(&issuer);
            let _ = wide.step(&issuer);
        }
        assert_eq!(none.probes, 60, "zero slack re-probes every tick");
        assert!(
            wide.probes < 10,
            "wide envelope should amortise probes, got {}",
            wide.probes
        );
        assert_eq!(wide.probes + wide.cache_hits, 60);
    }

    #[test]
    fn teleport_invalidates_envelope() {
        let engine = engine();
        let range = RangeSpec::square(50.0);
        let mut runner = ContinuousIpq::new(&engine, range, 200.0);
        let a = Issuer::uniform(Rect::centered(Point::new(100.0, 100.0), 30.0, 30.0));
        let b = Issuer::uniform(Rect::centered(Point::new(900.0, 900.0), 30.0, 30.0));
        let _ = runner.step(&a);
        let _ = runner.step(&b); // far jump → new probe
        assert_eq!(runner.probes, 2);
        let snap = engine.ipq(&b, range);
        let cont = runner.step(&b);
        assert_eq!(cont.results.len(), snap.results.len());
    }

    #[test]
    #[should_panic(expected = "slack")]
    fn rejects_negative_slack() {
        let engine = engine();
        let _ = ContinuousIpq::new(&engine, RangeSpec::square(10.0), -1.0);
    }

    #[test]
    #[should_panic(expected = "slack")]
    fn rejects_nan_slack() {
        let engine = engine();
        let _ = ContinuousIpq::new(&engine, RangeSpec::square(10.0), f64::NAN);
    }

    #[test]
    #[should_panic(expected = "slack")]
    fn rejects_infinite_slack() {
        let engine = engine();
        let _ = ContinuousIpq::new(&engine, RangeSpec::square(10.0), f64::INFINITY);
    }
}
