//! Criterion microbenchmark for the integrator ablation: exact closed
//! form vs grid quadrature vs Monte-Carlo on one IUQ refinement.

use criterion::{criterion_group, criterion_main, Criterion};
use iloc_bench::{Scale, TestBed};
use iloc_core::{Integrator, Issuer, RangeSpec};
use iloc_datagen::WorkloadGen;

fn bench(c: &mut Criterion) {
    let bed = TestBed::build(Scale::quick());
    let range = RangeSpec::square(500.0);
    let issuer = Issuer::uniform(WorkloadGen::new(14).issuer_region(250.0));
    let mut group = c.benchmark_group("ablation_integrators");
    let backends: [(&str, Integrator); 3] = [
        ("exact", Integrator::Exact),
        ("grid40", Integrator::Grid { per_axis: 40 }),
        ("mc250", Integrator::MonteCarlo { samples: 250 }),
    ];
    for (label, integ) in backends {
        group.bench_function(label, |b| {
            b.iter(|| bed.long_beach.iuq_with(&issuer, range, integ))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
