//! A reconnecting wrapper around [`Client`] for driving traffic
//! across a server restart.
//!
//! A plain [`Client`] dies with its socket. The crash-recovery smoke
//! needs the opposite: keep querying while the server is SIGKILLed and
//! restarted underneath it. [`ResilientClient`] retries transport
//! failures by reconnecting with **capped exponential backoff** and
//! then **re-issuing every standing SUBSCRIBE** it holds (a restarted
//! server has no memory of subscription ids — they live with the
//! connection). The recovered epoch each re-subscription's SUB_ACK
//! reports is kept, so the driver can see exactly which epoch the
//! server came back at.
//!
//! Mutations (`submit` / `commit`) are deliberately **not** retried:
//! a commit whose ack was lost may or may not have published, and
//! replaying it blindly would double-apply. The driver owns that
//! decision; queries and subscriptions are idempotent and retry
//! freely.
//!
//! Backoff is **jittered deterministically**: each client draws its
//! sleeps from a SplitMix64 stream seeded from the process id and a
//! per-client counter, so a fleet of clients spawned together fans
//! out instead of hammering the listener in lockstep — yet any single
//! run is exactly reproducible from its seed.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use iloc_core::pipeline::PointRequest;
use iloc_core::QueryAnswer;
use iloc_server::client::{Client, ClientError, SubAck};

/// First reconnect delay; doubles per consecutive failure.
const BACKOFF_START: Duration = Duration::from_millis(50);

/// Backoff ceiling.
const BACKOFF_CAP: Duration = Duration::from_secs(2);

/// Distinguishes clients created in the same process so their jitter
/// streams decorrelate even with identical process ids.
static NEXT_JITTER_SEED: AtomicU64 = AtomicU64::new(0);

/// SplitMix64 step: the standard finalizer over a Weyl sequence.
/// Deterministic per seed, full-period, no state beyond one `u64`.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// `base/2 + base/2 * frac` where `frac` is drawn from the client's
/// jitter stream: equal-height decorrelation (half deterministic floor,
/// half uniform), so the mean stays at 3/4 of the nominal backoff and
/// the floor guarantees the listener is never spun on.
fn jittered(base: Duration, state: &mut u64) -> Duration {
    let half = base / 2;
    let frac = (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64;
    half + Duration::from_secs_f64(half.as_secs_f64() * frac)
}

/// One standing point query the client re-subscribes after
/// reconnecting.
#[derive(Debug, Clone)]
struct Standing {
    request: PointRequest,
    slack: f64,
    /// Current server-side id (changes on every reconnect).
    sub_id: u64,
}

/// A [`Client`] that survives server restarts.
#[derive(Debug)]
pub struct ResilientClient {
    addr: SocketAddr,
    client: Option<Client>,
    standing: Vec<Standing>,
    /// Total reconnects performed (0 on an undisturbed run).
    reconnects: usize,
    /// Recovered epoch reported by the most recent point SUB_ACK.
    last_recovered_epoch: u64,
    /// Give up reconnecting after this long without a live connection.
    reconnect_timeout: Duration,
    /// SplitMix64 state feeding the backoff jitter (seeded per client).
    jitter: u64,
}

impl ResilientClient {
    /// Connects, retrying until `reconnect_timeout` elapses (the same
    /// budget later reconnects get).
    pub fn connect(addr: SocketAddr, reconnect_timeout: Duration) -> Result<Self, ClientError> {
        let client = Client::connect_retry(addr, reconnect_timeout)?;
        let jitter = u64::from(std::process::id())
            .wrapping_shl(32)
            .wrapping_add(NEXT_JITTER_SEED.fetch_add(1, Ordering::Relaxed));
        Ok(ResilientClient {
            addr,
            client: Some(client),
            standing: Vec::new(),
            reconnects: 0,
            last_recovered_epoch: 0,
            reconnect_timeout,
            jitter,
        })
    }

    /// Total reconnects performed so far.
    pub fn reconnects(&self) -> usize {
        self.reconnects
    }

    /// Recovered epoch from the most recent SUB_ACK (0 until the first
    /// subscription, or when the server's catalog is transient/fresh).
    pub fn last_recovered_epoch(&self) -> u64 {
        self.last_recovered_epoch
    }

    /// `true` when `e` is a transport failure a reconnect can heal
    /// (everything except a server-reported error frame or a wire
    /// decode failure, which would recur on a fresh connection).
    fn is_transport(e: &ClientError) -> bool {
        matches!(e, ClientError::Io(_) | ClientError::Unexpected { .. })
    }

    /// Reconnects with capped exponential backoff and re-issues every
    /// standing SUBSCRIBE.
    fn reconnect(&mut self) -> Result<(), ClientError> {
        self.client = None;
        let deadline = Instant::now() + self.reconnect_timeout;
        let mut backoff = BACKOFF_START;
        loop {
            std::thread::sleep(jittered(backoff, &mut self.jitter));
            if let Ok(mut client) = Client::connect(self.addr) {
                // Re-subscribe before handing the connection back:
                // the restarted server assigns fresh ids.
                let mut ok = true;
                for standing in &mut self.standing {
                    match client.subscribe_point(&standing.request, standing.slack) {
                        Ok((ack, _)) => {
                            standing.sub_id = ack.sub_id;
                            self.last_recovered_epoch = ack.recovered_epoch;
                        }
                        Err(e) if Self::is_transport(&e) => {
                            ok = false;
                            break;
                        }
                        Err(e) => return Err(e),
                    }
                }
                if ok {
                    self.client = Some(client);
                    self.reconnects += 1;
                    return Ok(());
                }
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "reconnect budget exhausted",
                )));
            }
            backoff = (backoff * 2).min(BACKOFF_CAP);
        }
    }

    /// Runs `op` against the live connection, reconnecting (and
    /// re-subscribing) on transport failure until it succeeds or the
    /// reconnect budget runs out. `op` must be idempotent.
    fn with_retry<T>(
        &mut self,
        mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        loop {
            if self.client.is_none() {
                self.reconnect()?;
            }
            let client = self.client.as_mut().expect("just reconnected");
            match op(client) {
                Ok(v) => return Ok(v),
                Err(e) if Self::is_transport(&e) => {
                    self.client = None;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// IPQ / C-IPQ with transparent reconnect.
    pub fn point_query(&mut self, request: &PointRequest) -> Result<QueryAnswer, ClientError> {
        self.with_retry(|c| c.point_query(request))
    }

    /// Liveness probe with transparent reconnect.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.with_retry(|c| c.ping())
    }

    /// Registers a standing point query that survives restarts: after
    /// every reconnect it is re-subscribed automatically and its
    /// SUB_ACK's recovered epoch is recorded. Returns the initial ack
    /// and answer.
    pub fn subscribe_point(
        &mut self,
        request: &PointRequest,
        slack: f64,
    ) -> Result<(SubAck, QueryAnswer), ClientError> {
        let request_clone = request.clone();
        let (ack, answer) = self.with_retry(|c| c.subscribe_point(&request_clone, slack))?;
        self.last_recovered_epoch = ack.recovered_epoch;
        self.standing.push(Standing {
            request: request.clone(),
            slack,
            sub_id: ack.sub_id,
        });
        Ok((ack, answer))
    }

    /// Current server-side ids of the standing queries, in
    /// subscription order (refreshed on every reconnect).
    pub fn standing_ids(&self) -> Vec<u64> {
        self.standing.iter().map(|s| s.sub_id).collect()
    }

    /// The live inner client for non-retried calls (mutations, stats).
    /// Errors there leave reconnection to the next retried call.
    pub fn raw(&mut self) -> Result<&mut Client, ClientError> {
        if self.client.is_none() {
            self.reconnect()?;
        }
        Ok(self.client.as_mut().expect("just reconnected"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_is_deterministic_bounded_and_seed_sensitive() {
        let base = Duration::from_millis(200);
        let mut a = 42u64;
        let mut b = 42u64;
        let mut c = 43u64;
        let (mut equal, mut differ) = (true, false);
        for _ in 0..64 {
            let x = jittered(base, &mut a);
            let y = jittered(base, &mut b);
            let z = jittered(base, &mut c);
            equal &= x == y;
            differ |= x != z;
            // Half-deterministic floor, never above the nominal backoff.
            assert!(x >= base / 2 && x <= base, "out of range: {x:?}");
        }
        assert!(equal, "same seed must replay the same sleeps");
        assert!(differ, "different seeds must decorrelate");
    }
}
