//! R-tree node representation.

use iloc_geometry::Rect;

/// Node payload: either item entries (leaf) or child references with
/// cached child MBRs (internal).
#[derive(Debug, Clone)]
pub enum NodeKind<T> {
    /// Leaf node: `(item extent, item)` pairs.
    Leaf(Vec<(Rect, T)>),
    /// Internal node: `(child MBR, child arena index)` pairs.
    Internal(Vec<(Rect, usize)>),
}

/// One arena node.
#[derive(Debug, Clone)]
pub struct Node<T> {
    /// Payload.
    pub kind: NodeKind<T>,
}

impl<T: Copy> Node<T> {
    /// Empty leaf.
    pub fn new_leaf() -> Self {
        Node {
            kind: NodeKind::Leaf(Vec::new()),
        }
    }

    /// Leaf with entries.
    pub fn new_leaf_with(entries: Vec<(Rect, T)>) -> Self {
        Node {
            kind: NodeKind::Leaf(entries),
        }
    }

    /// Internal node with child entries.
    pub fn new_internal(children: Vec<(Rect, usize)>) -> Self {
        Node {
            kind: NodeKind::Internal(children),
        }
    }

    /// MBR over all entries ([`Rect::EMPTY`] for an empty leaf).
    pub fn mbr(&self) -> Rect {
        match &self.kind {
            NodeKind::Leaf(entries) => entries.iter().fold(Rect::EMPTY, |acc, &(r, _)| acc.hull(r)),
            NodeKind::Internal(children) => children
                .iter()
                .fold(Rect::EMPTY, |acc, &(r, _)| acc.hull(r)),
        }
    }

    /// Number of direct entries.
    pub fn entry_count(&self) -> usize {
        match &self.kind {
            NodeKind::Leaf(e) => e.len(),
            NodeKind::Internal(c) => c.len(),
        }
    }
}
