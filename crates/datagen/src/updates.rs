//! Update-mix workload generation for the dynamic serving scenario:
//! seeded arrival / departure / move streams over the California and
//! Long Beach sets.
//!
//! The paper's experiments query a static snapshot; the serving layer
//! additionally needs churn. A generator starts from one of the
//! standard datasets (ids `0..n` in dataset order), then emits a
//! deterministic event stream: **arrivals** (a fresh id at a uniform
//! position in [`SPACE`]), **departures** (a uniformly chosen live
//! id) and **moves** (a live object displaced by a bounded jitter,
//! clamped into the space). The generator tracks the live set itself,
//! so departures and moves always reference live ids and the stream
//! can be replayed against any engine — the final
//! [`PointUpdateGen::live`] set is what a from-scratch rebuild should
//! contain, which is exactly what the dynamic-vs-rebuild property
//! suite compares.

use iloc_geometry::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::california::california_points;
use crate::longbeach::long_beach_rects;
use crate::SPACE;

/// Maximum per-move displacement along each axis.
const MOVE_JITTER: f64 = 120.0;

/// Relative frequency of the three event kinds (need not sum to 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateMix {
    /// Weight of arrivals.
    pub arrivals: f64,
    /// Weight of departures.
    pub departures: f64,
    /// Weight of moves.
    pub moves: f64,
}

impl UpdateMix {
    /// Moving-objects default: churn dominated by movement, arrivals
    /// and departures balanced (the catalog size stays stationary in
    /// expectation).
    pub fn balanced() -> Self {
        UpdateMix {
            arrivals: 0.2,
            departures: 0.2,
            moves: 0.6,
        }
    }

    /// Draws one event kind (0 = arrive, 1 = depart, 2 = move).
    fn pick(&self, rng: &mut StdRng) -> u8 {
        assert!(
            self.arrivals >= 0.0 && self.departures >= 0.0 && self.moves >= 0.0,
            "weights must be non-negative"
        );
        let total = self.arrivals + self.departures + self.moves;
        assert!(total > 0.0, "at least one weight must be positive");
        let x = rng.gen_range(0.0..total);
        if x < self.arrivals {
            0
        } else if x < self.arrivals + self.departures {
            1
        } else {
            2
        }
    }
}

/// One event of a point-object stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PointUpdate {
    /// A new object enters at `loc`.
    Arrive {
        /// Fresh id (never reused within one stream).
        id: u64,
        /// Entry location.
        loc: Point,
    },
    /// A live object leaves.
    Depart {
        /// The departing object's id.
        id: u64,
    },
    /// A live object relocates.
    Move {
        /// The moving object's id.
        id: u64,
        /// Its new location.
        to: Point,
    },
}

/// One event of an uncertain-object (rectangle) stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RectUpdate {
    /// A new object enters with this uncertainty region.
    Arrive {
        /// Fresh id (never reused within one stream).
        id: u64,
        /// Entry uncertainty region.
        region: Rect,
    },
    /// A live object leaves.
    Depart {
        /// The departing object's id.
        id: u64,
    },
    /// A live object's uncertainty region relocates.
    Move {
        /// The moving object's id.
        id: u64,
        /// Its translated uncertainty region.
        to: Rect,
    },
}

/// Clamps a point into the data space.
fn clamp_point(p: Point) -> Point {
    Point::new(
        p.x.clamp(SPACE.min.x, SPACE.max.x),
        p.y.clamp(SPACE.min.y, SPACE.max.y),
    )
}

/// Deterministic arrival/departure/move stream over point objects.
#[derive(Debug)]
pub struct PointUpdateGen {
    rng: StdRng,
    mix: UpdateMix,
    live: Vec<(u64, Point)>,
    next_id: u64,
}

impl PointUpdateGen {
    /// A generator seeded over the California point set: the base
    /// catalog is `california_points(base_size, seed)` with ids
    /// `0..base_size`, and the event stream is driven by the same
    /// seed.
    pub fn over_california(base_size: usize, seed: u64, mix: UpdateMix) -> (Vec<Point>, Self) {
        let base = california_points(base_size, seed);
        let gen = PointUpdateGen::from_base(&base, seed, mix);
        (base, gen)
    }

    /// A generator over an arbitrary base catalog (ids `0..len`).
    pub fn from_base(base: &[Point], seed: u64, mix: UpdateMix) -> Self {
        PointUpdateGen {
            // Offset the seed so the stream is independent of the
            // base-set draw it shares a seed with.
            rng: StdRng::seed_from_u64(seed ^ 0x5EED_0F0B_B1E5),
            mix,
            live: base
                .iter()
                .copied()
                .enumerate()
                .map(|(k, p)| (k as u64, p))
                .collect(),
            next_id: base.len() as u64,
        }
    }

    /// The live `(id, location)` set after every event emitted so far
    /// — the catalog a from-scratch rebuild should contain.
    pub fn live(&self) -> &[(u64, Point)] {
        &self.live
    }

    /// Draws the next event. With an empty live set the event is
    /// always an arrival.
    pub fn next_update(&mut self) -> PointUpdate {
        let kind = if self.live.is_empty() {
            0
        } else {
            self.mix.pick(&mut self.rng)
        };
        match kind {
            0 => {
                let id = self.next_id;
                self.next_id += 1;
                let loc = Point::new(
                    self.rng.gen_range(SPACE.min.x..=SPACE.max.x),
                    self.rng.gen_range(SPACE.min.y..=SPACE.max.y),
                );
                self.live.push((id, loc));
                PointUpdate::Arrive { id, loc }
            }
            1 => {
                let k = self.rng.gen_range(0..self.live.len());
                let (id, _) = self.live.swap_remove(k);
                PointUpdate::Depart { id }
            }
            _ => {
                let k = self.rng.gen_range(0..self.live.len());
                let (id, loc) = self.live[k];
                let to = clamp_point(Point::new(
                    loc.x + self.rng.gen_range(-MOVE_JITTER..=MOVE_JITTER),
                    loc.y + self.rng.gen_range(-MOVE_JITTER..=MOVE_JITTER),
                ));
                self.live[k] = (id, to);
                PointUpdate::Move { id, to }
            }
        }
    }

    /// Draws a batch of events.
    pub fn stream(&mut self, count: usize) -> Vec<PointUpdate> {
        (0..count).map(|_| self.next_update()).collect()
    }
}

/// Deterministic arrival/departure/move stream over uncertain-object
/// rectangles.
#[derive(Debug)]
pub struct RectUpdateGen {
    rng: StdRng,
    mix: UpdateMix,
    live: Vec<(u64, Rect)>,
    next_id: u64,
}

impl RectUpdateGen {
    /// A generator seeded over the Long Beach rectangle set: the base
    /// catalog is `long_beach_rects(base_size, seed)` with ids
    /// `0..base_size`, and the event stream is driven by the same
    /// seed.
    pub fn over_long_beach(base_size: usize, seed: u64, mix: UpdateMix) -> (Vec<Rect>, Self) {
        let base = long_beach_rects(base_size, seed);
        let gen = RectUpdateGen::from_base(&base, seed, mix);
        (base, gen)
    }

    /// A generator over an arbitrary base catalog (ids `0..len`).
    pub fn from_base(base: &[Rect], seed: u64, mix: UpdateMix) -> Self {
        RectUpdateGen {
            rng: StdRng::seed_from_u64(seed ^ 0x5EED_0F2E_C750),
            mix,
            live: base
                .iter()
                .copied()
                .enumerate()
                .map(|(k, r)| (k as u64, r))
                .collect(),
            next_id: base.len() as u64,
        }
    }

    /// The live `(id, region)` set after every event emitted so far.
    pub fn live(&self) -> &[(u64, Rect)] {
        &self.live
    }

    /// Draws the next event (always an arrival when nothing is live).
    pub fn next_update(&mut self) -> RectUpdate {
        let kind = if self.live.is_empty() {
            0
        } else {
            self.mix.pick(&mut self.rng)
        };
        match kind {
            0 => {
                let id = self.next_id;
                self.next_id += 1;
                let w = self.rng.gen_range(2.0..60.0);
                let h = self.rng.gen_range(2.0..60.0);
                let cx = self.rng.gen_range(SPACE.min.x + w..SPACE.max.x - w);
                let cy = self.rng.gen_range(SPACE.min.y + h..SPACE.max.y - h);
                let region = Rect::centered(Point::new(cx, cy), w, h);
                self.live.push((id, region));
                RectUpdate::Arrive { id, region }
            }
            1 => {
                let k = self.rng.gen_range(0..self.live.len());
                let (id, _) = self.live.swap_remove(k);
                RectUpdate::Depart { id }
            }
            _ => {
                let k = self.rng.gen_range(0..self.live.len());
                let (id, region) = self.live[k];
                // Translate, clamping the whole region into the space.
                let dx = self
                    .rng
                    .gen_range(-MOVE_JITTER..=MOVE_JITTER)
                    .clamp(SPACE.min.x - region.min.x, SPACE.max.x - region.max.x);
                let dy = self
                    .rng
                    .gen_range(-MOVE_JITTER..=MOVE_JITTER)
                    .clamp(SPACE.min.y - region.min.y, SPACE.max.y - region.max.y);
                let to = Rect::from_coords(
                    region.min.x + dx,
                    region.min.y + dy,
                    region.max.x + dx,
                    region.max.y + dy,
                );
                self.live[k] = (id, to);
                RectUpdate::Move { id, to }
            }
        }
    }

    /// Draws a batch of events.
    pub fn stream(&mut self, count: usize) -> Vec<RectUpdate> {
        (0..count).map(|_| self.next_update()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn streams_are_deterministic() {
        let mk = || {
            let (_, mut gen) = PointUpdateGen::over_california(500, 7, UpdateMix::balanced());
            gen.stream(1_000)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn events_reference_live_ids_and_track_the_live_set() {
        let (base, mut gen) = PointUpdateGen::over_california(300, 3, UpdateMix::balanced());
        let mut live: HashSet<u64> = (0..base.len() as u64).collect();
        let mut seen_ids: HashSet<u64> = live.clone();
        for event in gen.stream(2_000) {
            match event {
                PointUpdate::Arrive { id, loc } => {
                    assert!(seen_ids.insert(id), "arrival reused id {id}");
                    assert!(live.insert(id));
                    assert!(SPACE.contains_point(loc));
                }
                PointUpdate::Depart { id } => assert!(live.remove(&id), "departed dead id {id}"),
                PointUpdate::Move { id, to } => {
                    assert!(live.contains(&id), "moved dead id {id}");
                    assert!(SPACE.contains_point(to));
                }
            }
        }
        let tracked: HashSet<u64> = gen.live().iter().map(|&(id, _)| id).collect();
        assert_eq!(tracked, live);
    }

    #[test]
    fn mix_ratios_are_roughly_honoured() {
        let mix = UpdateMix {
            arrivals: 0.5,
            departures: 0.1,
            moves: 0.4,
        };
        let (_, mut gen) = PointUpdateGen::over_california(2_000, 11, mix);
        let mut counts = [0usize; 3];
        for event in gen.stream(10_000) {
            match event {
                PointUpdate::Arrive { .. } => counts[0] += 1,
                PointUpdate::Depart { .. } => counts[1] += 1,
                PointUpdate::Move { .. } => counts[2] += 1,
            }
        }
        assert!((4_500..=5_500).contains(&counts[0]), "{counts:?}");
        assert!((600..=1_400).contains(&counts[1]), "{counts:?}");
        assert!((3_500..=4_500).contains(&counts[2]), "{counts:?}");
    }

    #[test]
    fn rect_moves_stay_inside_the_space() {
        let (_, mut gen) = RectUpdateGen::over_long_beach(1_000, 5, UpdateMix::balanced());
        for event in gen.stream(5_000) {
            match event {
                RectUpdate::Arrive { region, .. } => assert!(SPACE.contains_rect(region)),
                RectUpdate::Move { to, .. } => {
                    assert!(SPACE.contains_rect(to), "moved out of space: {to:?}")
                }
                RectUpdate::Depart { .. } => {}
            }
        }
        assert!(!gen.live().is_empty());
    }
}
