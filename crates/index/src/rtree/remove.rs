//! Deletion with tree condensation (Guttman's `Delete`/`CondenseTree`).
//!
//! Removing an entry may under-fill its leaf; under-filled nodes are
//! dissolved and their surviving items re-inserted from the top, which
//! keeps the tree within its fill-factor invariants. Dissolved arena
//! slots go onto a free list that `insert` reuses, so long
//! insert/delete workloads do not leak arena space.

use iloc_geometry::Rect;

use super::{Node, NodeKind, RTree};

impl<T: Copy + PartialEq> RTree<T> {
    /// Removes one stored entry matching `(extent, item)` exactly.
    /// Returns `true` when an entry was found and removed.
    ///
    /// When several identical entries exist, one of them is removed.
    pub fn remove(&mut self, extent: Rect, item: T) -> bool {
        let mut orphans: Vec<(Rect, T)> = Vec::new();
        if !self.remove_rec(self.root, extent, item, &mut orphans) {
            return false;
        }
        self.len -= 1;

        // Shrink the root while it is an internal node with one child.
        loop {
            let promote = match &self.nodes[self.root].kind {
                NodeKind::Internal(children) if children.len() == 1 => Some(children[0].1),
                _ => None,
            };
            match promote {
                Some(child) => {
                    let old = self.root;
                    self.root = child;
                    self.release(old);
                }
                None => break,
            }
        }
        // An emptied internal root degenerates to an empty leaf.
        if self.len == 0 {
            self.nodes[self.root].kind = NodeKind::Leaf(Vec::new());
        }

        // Re-insert orphaned items (they are still counted in `len`;
        // `insert` increments, so compensate first).
        for (r, it) in orphans {
            self.len -= 1;
            self.insert(r, it);
        }
        true
    }

    /// Depth-first search and removal; returns `true` once removed.
    fn remove_rec(
        &mut self,
        node_idx: usize,
        extent: Rect,
        item: T,
        orphans: &mut Vec<(Rect, T)>,
    ) -> bool {
        let min = self.params.min_entries;
        // Leaf: remove in place.
        if let NodeKind::Leaf(entries) = &mut self.nodes[node_idx].kind {
            let Some(pos) = entries
                .iter()
                .position(|&(r, it)| r == extent && it == item)
            else {
                return false;
            };
            entries.swap_remove(pos);
            return true;
        }
        // Internal: collect candidate children first, then recurse
        // without holding a borrow on this node.
        let candidates: Vec<(usize, usize)> = match &self.nodes[node_idx].kind {
            NodeKind::Internal(children) => children
                .iter()
                .enumerate()
                .filter(|(_, &(mbr, _))| mbr.contains_rect(extent))
                .map(|(i, &(_, child))| (i, child))
                .collect(),
            NodeKind::Leaf(_) => unreachable!("handled above"),
        };
        for (i, child_idx) in candidates {
            if !self.remove_rec(child_idx, extent, item, orphans) {
                continue;
            }
            let child_count = self.nodes[child_idx].entry_count();
            if child_count < min {
                // Dissolve the under-filled child: orphan its items
                // and drop the entry.
                let NodeKind::Internal(children) = &mut self.nodes[node_idx].kind else {
                    unreachable!("node kind is stable");
                };
                children.swap_remove(i);
                self.drain_subtree(child_idx, orphans);
            } else {
                let mbr = self.nodes[child_idx].mbr();
                let NodeKind::Internal(children) = &mut self.nodes[node_idx].kind else {
                    unreachable!("node kind is stable");
                };
                children[i].0 = mbr;
            }
            return true;
        }
        false
    }

    /// Moves every leaf item under `idx` into `orphans` and releases
    /// the subtree's arena slots.
    fn drain_subtree(&mut self, idx: usize, orphans: &mut Vec<(Rect, T)>) {
        match std::mem::replace(&mut self.nodes[idx].kind, NodeKind::Leaf(Vec::new())) {
            NodeKind::Leaf(entries) => orphans.extend(entries),
            NodeKind::Internal(children) => {
                for (_, child) in children {
                    self.drain_subtree(child, orphans);
                }
            }
        }
        self.release(idx);
    }

    /// Puts an arena slot on the free list.
    fn release(&mut self, idx: usize) {
        debug_assert_ne!(idx, self.root, "cannot release the root");
        self.nodes[idx].kind = NodeKind::Leaf(Vec::new());
        self.free.push(idx);
    }
}

impl<T: Copy> RTree<T> {
    /// Allocates a node, reusing freed slots when available.
    pub(super) fn alloc_node(&mut self, node: Node<T>) -> usize {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = node;
            idx
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtree::RTreeParams;
    use crate::stats::AccessStats;
    use crate::traits::RangeIndex;
    use iloc_geometry::Point;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn pt(x: f64, y: f64) -> Rect {
        Rect::from_point(Point::new(x, y))
    }

    #[test]
    fn remove_missing_returns_false() {
        let mut tree: RTree<usize> = RTree::default();
        tree.insert(pt(1.0, 1.0), 7);
        assert!(!tree.remove(pt(2.0, 2.0), 7));
        assert!(!tree.remove(pt(1.0, 1.0), 8));
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn remove_to_empty_and_reuse() {
        let mut tree: RTree<usize> = RTree::default();
        tree.insert(pt(1.0, 1.0), 1);
        assert!(tree.remove(pt(1.0, 1.0), 1));
        assert!(tree.is_empty());
        let mut stats = AccessStats::new();
        assert!(tree
            .query_range(Rect::from_coords(0.0, 0.0, 5.0, 5.0), &mut stats)
            .is_empty());
        // Tree remains usable.
        tree.insert(pt(2.0, 2.0), 2);
        assert_eq!(tree.len(), 1);
        tree.check_invariants();
    }

    #[test]
    fn interleaved_inserts_and_removes_match_oracle() {
        let params = RTreeParams::new(8, 3);
        let mut tree = RTree::new(params);
        let mut live: Vec<(Rect, usize)> = Vec::new();
        let mut rng = StdRng::seed_from_u64(11);
        let mut next_id = 0usize;
        for step in 0..3_000 {
            let grow = live.len() < 20 || rng.gen_bool(0.55);
            if grow {
                let r = pt(rng.gen_range(0.0..500.0), rng.gen_range(0.0..500.0));
                tree.insert(r, next_id);
                live.push((r, next_id));
                next_id += 1;
            } else {
                let k = rng.gen_range(0..live.len());
                let (r, id) = live.swap_remove(k);
                assert!(tree.remove(r, id), "step {step}: failed to remove {id}");
            }
        }
        assert_eq!(tree.len(), live.len());
        tree.check_invariants();
        // Query equivalence with the surviving set.
        for _ in 0..50 {
            let x = rng.gen_range(0.0..500.0);
            let y = rng.gen_range(0.0..500.0);
            let q = Rect::centered(Point::new(x, y), 40.0, 40.0);
            let mut stats = AccessStats::new();
            let mut got = tree.query_range(q, &mut stats);
            got.sort_unstable();
            let mut want: Vec<usize> = live
                .iter()
                .filter(|(r, _)| r.overlaps(q))
                .map(|&(_, id)| id)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn mass_removal_shrinks_height() {
        let params = RTreeParams::new(4, 2);
        let mut tree = RTree::new(params);
        for k in 0..200usize {
            tree.insert(pt(k as f64, k as f64), k);
        }
        let tall = tree.height();
        assert!(tall >= 3);
        for k in 0..195usize {
            assert!(tree.remove(pt(k as f64, k as f64), k));
        }
        assert_eq!(tree.len(), 5);
        tree.check_invariants();
        assert!(tree.height() < tall, "root should have been demoted");
        // Freed slots get reused by later inserts.
        let nodes_before = tree.node_count();
        for k in 1000..1100usize {
            tree.insert(pt(k as f64, 0.0), k);
        }
        assert!(tree.node_count() <= nodes_before + 2, "free list unused");
        tree.check_invariants();
    }

    #[test]
    fn duplicate_entries_removed_one_at_a_time() {
        let mut tree: RTree<usize> = RTree::new(RTreeParams::new(4, 2));
        for _ in 0..3 {
            tree.insert(pt(5.0, 5.0), 9);
        }
        assert!(tree.remove(pt(5.0, 5.0), 9));
        assert_eq!(tree.len(), 2);
        assert!(tree.remove(pt(5.0, 5.0), 9));
        assert!(tree.remove(pt(5.0, 5.0), 9));
        assert!(!tree.remove(pt(5.0, 5.0), 9));
        assert!(tree.is_empty());
    }
}
