//! Engine for point-object databases (IPQ / C-IPQ) — a thin facade
//! over [`crate::pipeline::QueryPipeline`]: it owns the object table
//! and the R-tree and assembles one pipeline per query.

use std::collections::HashMap;

use iloc_geometry::{Point, Rect};
use iloc_index::{RTree, RTreeParams, RangeIndex, TraversalScratch};
use iloc_uncertainty::{ObjectId, PointObject};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::expand::p_expanded_query;
use crate::integrate::Integrator;
use crate::pipeline::{
    execute_batch, AcceptPolicy, BatchEngine, EvaluatorKind, ExecutionContext, PointRequest,
    PreparedQuery, PruneChain, QueryPipeline, RectFilter,
};
use crate::query::{CipqStrategy, Issuer, RangeSpec};
use crate::result::{Match, QueryAnswer};

use super::DEFAULT_QUERY_SEED;

/// A point-object database with its R-tree, answering IPQ and C-IPQ.
///
/// Object ids are expected to be unique within one engine (the
/// serving layer routes updates by id); [`PointEngine::insert`]
/// allocates collision-free ids automatically.
#[derive(Debug, Clone)]
pub struct PointEngine {
    objects: Vec<PointObject>,
    tree: RTree<u32>,
    /// Id → object-table slot, maintained by every insert/remove so
    /// departures resolve in O(1) (removal under churn would
    /// otherwise scan the table per update).
    slots: HashMap<ObjectId, u32>,
    /// Next id handed out by [`PointEngine::insert`]; kept strictly
    /// above every stored id so departures can never make a later
    /// arrival collide with a live object.
    next_id: u64,
}

impl PointEngine {
    /// Builds an engine over raw points (ids are assigned sequentially).
    pub fn build(points: Vec<Point>) -> Self {
        Self::from_objects(
            points
                .into_iter()
                .enumerate()
                .map(|(k, p)| PointObject::new(k as u64, p))
                .collect(),
        )
    }

    /// Builds an engine over existing point objects.
    pub fn from_objects(objects: Vec<PointObject>) -> Self {
        let entries = objects
            .iter()
            .enumerate()
            .map(|(k, o)| (Rect::from_point(o.loc), k as u32))
            .collect();
        let tree = RTree::bulk_load(entries, RTreeParams::default());
        let slots = objects
            .iter()
            .enumerate()
            .map(|(k, o)| (o.id, k as u32))
            .collect();
        let next_id = objects.iter().map(|o| o.id.0 + 1).max().unwrap_or(0);
        PointEngine {
            objects,
            tree,
            slots,
            next_id,
        }
    }

    /// Inserts one point object dynamically; returns its fresh id.
    pub fn insert(&mut self, loc: Point) -> iloc_uncertainty::ObjectId {
        let id = iloc_uncertainty::ObjectId(self.next_id);
        self.insert_object(PointObject { id, loc });
        id
    }

    /// Inserts one point object with a caller-chosen id (the sharded
    /// serving layer routes arrivals by id). **Upsert**: when the id
    /// is already live, the existing object is replaced — a retried
    /// or duplicate arrival must not leave an unremovable orphan
    /// behind a stale id→slot mapping.
    pub fn insert_object(&mut self, object: PointObject) {
        if self.slots.contains_key(&object.id) {
            self.remove(object.id);
        }
        self.next_id = self.next_id.max(object.id.0 + 1);
        let slot = self.objects.len() as u32;
        self.slots.insert(object.id, slot);
        self.tree.insert(Rect::from_point(object.loc), slot);
        self.objects.push(object);
    }

    /// Removes the object with the given id, maintaining the R-tree
    /// incrementally (no rebuild); returns `true` when present.
    ///
    /// The object table is kept dense: the last object is swapped into
    /// the vacated slot and its index entry is re-keyed accordingly.
    pub fn remove(&mut self, id: iloc_uncertainty::ObjectId) -> bool {
        let Some(slot) = self.slots.remove(&id) else {
            return false;
        };
        let removed = self
            .tree
            .remove(Rect::from_point(self.objects[slot as usize].loc), slot);
        assert!(removed, "object table and R-tree out of sync");
        let last = self.objects.len() - 1;
        if slot as usize != last {
            let moved = self.objects[last];
            let rekeyed = self.tree.remove(Rect::from_point(moved.loc), last as u32);
            assert!(rekeyed, "object table and R-tree out of sync");
            self.tree.insert(Rect::from_point(moved.loc), slot);
            self.slots.insert(moved.id, slot);
        }
        self.objects.swap_remove(slot as usize);
        true
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` when the database is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// The stored objects.
    pub fn objects(&self) -> &[PointObject] {
        &self.objects
    }

    /// Looks up the live object with this id in O(1), if present (the
    /// serving layer uses this to compute a commit's dirty region from
    /// the *pre-update* locations of departing and moving objects).
    pub fn find(&self, id: ObjectId) -> Option<&PointObject> {
        self.slots
            .get(&id)
            .map(|&slot| &self.objects[slot as usize])
    }

    /// Raw R-tree filter results — indices into [`Self::objects`] whose
    /// locations fall inside `filter`. Exposed for pipelines that
    /// assemble their own refinement (ablations, continuous queries).
    pub fn raw_candidates(&self, filter: Rect, stats: &mut iloc_index::AccessStats) -> Vec<u32> {
        self.tree.query_range(filter, stats)
    }

    /// Allocation-free variant of [`Self::raw_candidates`]: candidates
    /// are pushed into `out`, the probe's DFS runs on `scratch`.
    pub fn raw_candidates_scratch(
        &self,
        filter: Rect,
        stats: &mut iloc_index::AccessStats,
        scratch: &mut TraversalScratch,
        out: &mut Vec<u32>,
    ) {
        self.tree.query_range_scratch(filter, stats, scratch, out);
    }

    /// Assembles and runs one pipeline through the caller's context:
    /// R-tree filter with `filter`, no pruning (point objects carry no
    /// catalogs), `refine`, and `accept`.
    fn run_into(
        &self,
        query: PreparedQuery<'_>,
        filter: Rect,
        refine: EvaluatorKind,
        accept: AcceptPolicy,
        ctx: &mut ExecutionContext,
        answer: &mut QueryAnswer,
    ) {
        QueryPipeline {
            query,
            objects: &self.objects,
            filter: RectFilter {
                index: &self.tree,
                query: filter,
            },
            prune: PruneChain::none(),
            refine,
            accept,
        }
        .execute_into(ctx, answer)
    }

    /// One-shot wrapper over [`Self::run_into`] with a fresh context.
    fn run(
        &self,
        query: PreparedQuery<'_>,
        filter: Rect,
        refine: EvaluatorKind,
        accept: AcceptPolicy,
        integrator: Integrator,
    ) -> QueryAnswer {
        let mut answer = QueryAnswer::default();
        self.run_into(
            query,
            filter,
            refine,
            accept,
            &mut ExecutionContext::new(integrator),
            &mut answer,
        );
        answer
    }

    /// **IPQ** (Definition 3) via the enhanced pipeline: Minkowski-sum
    /// filter (Lemma 1) + exact duality refinement (Lemma 3).
    pub fn ipq(&self, issuer: &Issuer, range: RangeSpec) -> QueryAnswer {
        self.ipq_with(issuer, range, Integrator::Auto)
    }

    /// IPQ with an explicit integrator (the experiments use
    /// [`Integrator::MonteCarlo`] to reproduce the paper's non-uniform
    /// timings).
    pub fn ipq_with(
        &self,
        issuer: &Issuer,
        range: RangeSpec,
        integrator: Integrator,
    ) -> QueryAnswer {
        let query = PreparedQuery::new(issuer, range);
        self.run(
            query,
            query.expanded,
            EvaluatorKind::Duality,
            AcceptPolicy::Positive,
            integrator,
        )
    }

    /// IPQ via the **basic method** (Section 3.3, Eq. 2): numerical
    /// integration over the issuer region for every candidate.
    /// `per_axis` controls the sampling grid (the paper's "set of
    /// sampling points").
    pub fn ipq_basic(&self, issuer: &Issuer, range: RangeSpec, per_axis: usize) -> QueryAnswer {
        let query = PreparedQuery::new(issuer, range);
        self.run(
            query,
            query.expanded,
            EvaluatorKind::Basic { per_axis },
            AcceptPolicy::Positive,
            Integrator::Auto,
        )
    }

    /// **IPNN** — imprecise probabilistic nearest-neighbour query (the
    /// paper's future-work extension): returns every object that could
    /// be the nearest neighbour of the issuer's true position, with the
    /// probability that it is. Probabilities sum to 1.
    ///
    /// Candidates are pruned with the MINDIST/MAXDIST bound lifted to
    /// the issuer *region* (two R-tree probes), then refined with
    /// `method`.
    ///
    /// NN queries are not range queries, so this path stays outside the
    /// filter→prune→refine [`QueryPipeline`].
    pub fn ipnn(&self, issuer: &Issuer, method: crate::eval::nn::NnMethod) -> QueryAnswer {
        let start = std::time::Instant::now();
        let mut answer = QueryAnswer::default();
        let mut rng = StdRng::seed_from_u64(DEFAULT_QUERY_SEED);
        let locs: Vec<Point> = self.objects.iter().map(|o| o.loc).collect();
        let candidates = crate::eval::nn::nn_candidates(issuer.region(), &locs, |r| {
            self.tree.query_range(r, &mut answer.stats.access)
        });
        answer.stats.prob_evals = candidates.len() as u64;
        for (idx, p) in crate::eval::nn::nn_probabilities(
            issuer.pdf(),
            &locs,
            &candidates,
            method,
            &mut rng,
            &mut answer.stats,
        ) {
            answer.results.push(Match {
                id: self.objects[idx as usize].id,
                probability: p,
            });
        }
        answer.finalize();
        answer.stats.elapsed = start.elapsed();
        answer
    }

    /// Constrained IPNN: only neighbours with `pi ≥ qp`.
    pub fn cipnn(
        &self,
        issuer: &Issuer,
        qp: f64,
        method: crate::eval::nn::NnMethod,
    ) -> QueryAnswer {
        assert!((0.0..=1.0).contains(&qp), "threshold must be in [0, 1]");
        let mut answer = self.ipnn(issuer, method);
        answer.results.retain(|m| m.probability >= qp);
        answer
    }

    /// **C-IPQ** (Definition 5): objects with `pi ≥ qp`, with the
    /// filter chosen by `strategy` (Figure 11 compares the two).
    pub fn cipq(
        &self,
        issuer: &Issuer,
        range: RangeSpec,
        qp: f64,
        strategy: CipqStrategy,
    ) -> QueryAnswer {
        self.cipq_with(issuer, range, qp, strategy, Integrator::Auto)
    }

    /// C-IPQ with an explicit integrator (Figure 13 uses Monte-Carlo).
    pub fn cipq_with(
        &self,
        issuer: &Issuer,
        range: RangeSpec,
        qp: f64,
        strategy: CipqStrategy,
        integrator: Integrator,
    ) -> QueryAnswer {
        let mut answer = QueryAnswer::default();
        self.cipq_into(
            issuer,
            range,
            qp,
            strategy,
            &mut ExecutionContext::new(integrator),
            &mut answer,
        );
        answer
    }

    /// C-IPQ through the caller's context — the single place that maps
    /// a constraint to its filter rectangle, shared by the one-shot
    /// API and the batch executor.
    fn cipq_into(
        &self,
        issuer: &Issuer,
        range: RangeSpec,
        qp: f64,
        strategy: CipqStrategy,
        ctx: &mut ExecutionContext,
        answer: &mut QueryAnswer,
    ) {
        assert!((0.0..=1.0).contains(&qp), "threshold must be in [0, 1]");
        let query = PreparedQuery::new(issuer, range);
        let filter = match strategy {
            CipqStrategy::MinkowskiSum => query.expanded,
            CipqStrategy::PExpanded => p_expanded_query(issuer, range, qp).1,
        };
        self.run_into(
            query,
            filter,
            EvaluatorKind::Duality,
            AcceptPolicy::AtLeast(qp),
            ctx,
            answer,
        );
    }

    /// Answers a request slice in parallel on all cores; answers are
    /// bit-identical to issuing each request sequentially.
    pub fn execute_batch(&self, requests: &[PointRequest]) -> Vec<QueryAnswer> {
        execute_batch(self, requests)
    }
}

impl BatchEngine for PointEngine {
    type Request = PointRequest;

    fn execute_one_into(
        &self,
        request: &PointRequest,
        ctx: &mut ExecutionContext,
        answer: &mut QueryAnswer,
    ) {
        ctx.prepare(request.integrator);
        match request.constraint {
            None => {
                let query = PreparedQuery::new(&request.issuer, request.range);
                self.run_into(
                    query,
                    query.expanded,
                    EvaluatorKind::Duality,
                    AcceptPolicy::Positive,
                    ctx,
                    answer,
                );
            }
            Some(c) => self.cipq_into(
                &request.issuer,
                request.range,
                c.qp,
                c.strategy,
                ctx,
                answer,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc_uncertainty::LocationPdf;

    fn grid_points() -> Vec<Point> {
        // 21×21 grid with spacing 50 covering [0,1000]².
        let mut pts = Vec::new();
        for i in 0..=20 {
            for j in 0..=20 {
                pts.push(Point::new(i as f64 * 50.0, j as f64 * 50.0));
            }
        }
        pts
    }

    fn issuer() -> Issuer {
        Issuer::uniform(Rect::from_coords(450.0, 450.0, 550.0, 550.0))
    }

    #[test]
    fn ipq_returns_only_positive_probabilities() {
        let engine = PointEngine::build(grid_points());
        let ans = engine.ipq(&issuer(), RangeSpec::square(100.0));
        assert!(!ans.results.is_empty());
        for m in &ans.results {
            assert!(m.probability > 0.0 && m.probability <= 1.0 + 1e-12);
        }
        // A point at the issuer's centre is always in range.
        let centre_id = engine
            .objects()
            .iter()
            .find(|o| o.loc == Point::new(500.0, 500.0))
            .unwrap()
            .id;
        assert!((ans.probability_of(centre_id).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ipq_matches_exhaustive_evaluation() {
        let engine = PointEngine::build(grid_points());
        let iss = issuer();
        let range = RangeSpec::square(120.0);
        let ans = engine.ipq(&iss, range);
        // Exhaustive: Lemma 3 on every object.
        for obj in engine.objects() {
            let pi = iss.pdf().prob_in_rect(range.at(obj.loc));
            match ans.probability_of(obj.id) {
                Some(got) => assert!((got - pi).abs() < 1e-12),
                None => assert!(pi <= 0.0 + 1e-12, "missing object with pi={pi}"),
            }
        }
    }

    #[test]
    fn basic_method_agrees_with_enhanced() {
        let engine = PointEngine::build(grid_points());
        let iss = issuer();
        let range = RangeSpec::square(100.0);
        let fast = engine.ipq(&iss, range);
        let slow = engine.ipq_basic(&iss, range, 120);
        assert_eq!(fast.results.len(), slow.results.len());
        for (a, b) in fast.results.iter().zip(&slow.results) {
            assert_eq!(a.id, b.id);
            assert!((a.probability - b.probability).abs() < 0.02);
        }
        // And the basic method did vastly more work.
        assert!(slow.stats.grid_cells > 100 * fast.stats.prob_evals);
    }

    #[test]
    fn cipq_strategies_agree_on_results() {
        let engine = PointEngine::build(grid_points());
        let iss = issuer();
        let range = RangeSpec::square(100.0);
        for &qp in &[0.0, 0.1, 0.3, 0.5, 0.8, 1.0] {
            let a = engine.cipq(&iss, range, qp, CipqStrategy::MinkowskiSum);
            let b = engine.cipq(&iss, range, qp, CipqStrategy::PExpanded);
            let ids_a: Vec<_> = a.results.iter().map(|m| m.id).collect();
            let ids_b: Vec<_> = b.results.iter().map(|m| m.id).collect();
            assert_eq!(ids_a, ids_b, "qp={qp}");
            // The p-expanded filter must never test more candidates.
            assert!(b.stats.access.candidates <= a.stats.access.candidates);
            for m in &a.results {
                assert!(m.probability >= qp);
            }
        }
    }

    #[test]
    fn cipq_p_expanded_prunes_more_as_threshold_rises() {
        let engine = PointEngine::build(grid_points());
        let iss = issuer();
        let range = RangeSpec::square(150.0);
        let mut prev = u64::MAX;
        for &qp in &[0.1, 0.2, 0.3, 0.4, 0.5] {
            let ans = engine.cipq(&iss, range, qp, CipqStrategy::PExpanded);
            assert!(ans.stats.access.candidates <= prev);
            prev = ans.stats.access.candidates;
        }
    }

    #[test]
    fn empty_engine() {
        let engine = PointEngine::build(Vec::new());
        assert!(engine.is_empty());
        let ans = engine.ipq(&issuer(), RangeSpec::square(10.0));
        assert!(ans.results.is_empty());
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn cipq_rejects_bad_threshold() {
        let engine = PointEngine::build(grid_points());
        let _ = engine.cipq(
            &issuer(),
            RangeSpec::square(10.0),
            1.5,
            CipqStrategy::PExpanded,
        );
    }

    #[test]
    fn ipnn_returns_distribution_over_possible_neighbours() {
        use crate::eval::nn::NnMethod;
        let engine = PointEngine::build(grid_points());
        // Issuer centred between four grid points.
        let iss = Issuer::uniform(Rect::centered(Point::new(475.0, 475.0), 20.0, 20.0));
        let ans = engine.ipnn(&iss, NnMethod::Grid { per_axis: 96 });
        let sum: f64 = ans.results.iter().map(|m| m.probability).sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        // By symmetry around (475, 475) the four surrounding grid
        // points (450/500 each axis) split the mass in quarters.
        assert_eq!(ans.results.len(), 4);
        for m in &ans.results {
            assert!((m.probability - 0.25).abs() < 1e-9, "{m:?}");
        }
        // Constrained version keeps only confident neighbours.
        let c = engine.cipnn(&iss, 0.3, NnMethod::Grid { per_axis: 96 });
        assert!(c.results.is_empty());
        let c = engine.cipnn(&iss, 0.2, NnMethod::Grid { per_axis: 96 });
        assert_eq!(c.results.len(), 4);
    }

    #[test]
    fn insert_object_upserts_live_ids() {
        let mut engine = PointEngine::build(vec![Point::new(10.0, 10.0), Point::new(20.0, 20.0)]);
        // A duplicate arrival replaces the live object, never
        // duplicating its id.
        engine.insert_object(PointObject::new(0u64, Point::new(500.0, 500.0)));
        assert_eq!(engine.len(), 2);
        let iss = Issuer::uniform(Rect::centered(Point::new(500.0, 500.0), 30.0, 30.0));
        let ans = engine.ipq(&iss, RangeSpec::square(40.0));
        assert_eq!(ans.results.len(), 1);
        assert_eq!(ans.results[0].id, ObjectId(0));
        // No orphan: the id is fully gone after one removal.
        assert!(engine.remove(ObjectId(0)));
        assert!(!engine.remove(ObjectId(0)));
        assert_eq!(engine.len(), 1);
    }

    #[test]
    fn dynamic_point_inserts_are_queryable() {
        let mut engine = PointEngine::build(Vec::new());
        for p in grid_points() {
            engine.insert(p);
        }
        let reference = PointEngine::build(grid_points());
        let iss = issuer();
        let range = RangeSpec::square(120.0);
        let a = engine.ipq(&iss, range);
        let b = reference.ipq(&iss, range);
        assert_eq!(a.results.len(), b.results.len());
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.id, y.id);
            assert!((x.probability - y.probability).abs() < 1e-12);
        }
    }

    #[test]
    fn ipnn_certain_when_one_point_dominates() {
        use crate::eval::nn::NnMethod;
        let engine =
            PointEngine::build(vec![Point::new(500.0, 500.0), Point::new(5_000.0, 5_000.0)]);
        let iss = Issuer::uniform(Rect::centered(Point::new(510.0, 505.0), 30.0, 30.0));
        let ans = engine.ipnn(&iss, NnMethod::MonteCarlo { samples: 500 });
        assert_eq!(ans.results.len(), 1);
        assert!((ans.results[0].probability - 1.0).abs() < 1e-12);
    }
}
