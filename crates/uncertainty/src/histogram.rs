//! Histogram (piecewise-constant) uncertainty pdf.
//!
//! The paper stresses that its methods "can deal with any type of
//! probability distribution". A gridded histogram is the standard way a
//! real system would represent an arbitrary empirical location
//! distribution (e.g. learned from past GPS fixes), so this pdf both
//! exercises that claim in tests and gives applications an escape hatch
//! beyond uniform/Gaussian. All quantities (rectangle mass, marginals,
//! quantiles) stay exact because cell masses integrate in closed form.

use iloc_geometry::{Interval, Point, Rect};
use rand::Rng;
use rand::RngCore;

use crate::pdf::{Axis, LocationPdf};

/// Piecewise-constant density on an `nx × ny` grid over an axis-parallel
/// region.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramPdf {
    region: Rect,
    nx: usize,
    ny: usize,
    /// Normalised cell masses, row-major (`mass[j * nx + i]`), summing
    /// to 1.
    mass: Vec<f64>,
    /// Cumulative masses for sampling (same layout, inclusive prefix
    /// sums).
    cum: Vec<f64>,
}

impl HistogramPdf {
    /// Builds a histogram pdf from raw non-negative cell weights
    /// (row-major, `weights[j * nx + i]`, length `nx · ny`); weights are
    /// normalised internally.
    ///
    /// # Panics
    ///
    /// Panics when the region is degenerate, dimensions are zero, the
    /// weight vector has the wrong length, any weight is negative or
    /// non-finite, or all weights are zero.
    pub fn new(region: Rect, nx: usize, ny: usize, weights: &[f64]) -> Self {
        assert!(region.area() > 0.0, "region must have positive area");
        assert!(nx > 0 && ny > 0, "grid dimensions must be positive");
        assert_eq!(weights.len(), nx * ny, "weights length must be nx*ny");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "at least one weight must be positive");
        let mass: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let mut cum = Vec::with_capacity(mass.len());
        let mut acc = 0.0;
        for &m in &mass {
            acc += m;
            cum.push(acc);
        }
        HistogramPdf {
            region,
            nx,
            ny,
            mass,
            cum,
        }
    }

    /// Uniform histogram (every cell equal); handy in tests.
    pub fn flat(region: Rect, nx: usize, ny: usize) -> Self {
        HistogramPdf::new(region, nx, ny, &vec![1.0; nx * ny])
    }

    /// Fits an empirical histogram to observed locations (e.g. past
    /// GPS fixes of a vehicle): cell weights are observation counts
    /// plus a Laplace-style `smoothing` pseudo-count that keeps every
    /// cell's density positive (so the support stays the full region,
    /// as the uncertainty model requires — the object *could* be
    /// anywhere in its region).
    ///
    /// # Panics
    ///
    /// Panics when `smoothing` is negative/non-finite, when it is zero
    /// and no observation falls inside the region, or on the
    /// [`HistogramPdf::new`] invariant violations.
    pub fn fit(region: Rect, nx: usize, ny: usize, observations: &[Point], smoothing: f64) -> Self {
        assert!(
            smoothing.is_finite() && smoothing >= 0.0,
            "smoothing must be finite and non-negative"
        );
        let mut weights = vec![smoothing; nx * ny];
        let cw = region.width() / nx as f64;
        let ch = region.height() / ny as f64;
        for p in observations {
            if !region.contains_point(*p) {
                continue;
            }
            let i = (((p.x - region.min.x) / cw) as usize).min(nx - 1);
            let j = (((p.y - region.min.y) / ch) as usize).min(ny - 1);
            weights[j * nx + i] += 1.0;
        }
        HistogramPdf::new(region, nx, ny, &weights)
    }

    /// Grid dimensions `(nx, ny)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Normalised mass of cell `(i, j)`.
    pub fn cell_mass(&self, i: usize, j: usize) -> f64 {
        self.mass[j * self.nx + i]
    }

    fn cell_width(&self) -> f64 {
        self.region.width() / self.nx as f64
    }

    fn cell_height(&self) -> f64 {
        self.region.height() / self.ny as f64
    }

    /// The rectangle covered by cell `(i, j)`.
    pub fn cell_rect(&self, i: usize, j: usize) -> Rect {
        let w = self.cell_width();
        let h = self.cell_height();
        Rect::from_coords(
            self.region.min.x + i as f64 * w,
            self.region.min.y + j as f64 * h,
            self.region.min.x + (i + 1) as f64 * w,
            self.region.min.y + (j + 1) as f64 * h,
        )
    }

    /// Index of the cell containing `p`, clamped into range (callers
    /// guarantee `p` is inside the region).
    fn cell_of(&self, p: Point) -> (usize, usize) {
        let i = (((p.x - self.region.min.x) / self.cell_width()) as usize).min(self.nx - 1);
        let j = (((p.y - self.region.min.y) / self.cell_height()) as usize).min(self.ny - 1);
        (i, j)
    }
}

impl LocationPdf for HistogramPdf {
    fn region(&self) -> Rect {
        self.region
    }

    fn density(&self, p: Point) -> f64 {
        if !self.region.contains_point(p) {
            return 0.0;
        }
        let (i, j) = self.cell_of(p);
        self.cell_mass(i, j) / (self.cell_width() * self.cell_height())
    }

    fn prob_in_rect(&self, r: Rect) -> f64 {
        let c = self.region.intersect(r);
        if c.is_empty() || c.area() == 0.0 {
            return 0.0;
        }
        let cell_area = self.cell_width() * self.cell_height();
        let mut acc = 0.0;
        // Only walk cells that can overlap the clipped rectangle.
        let i0 = (((c.min.x - self.region.min.x) / self.cell_width()) as usize).min(self.nx - 1);
        let i1 = (((c.max.x - self.region.min.x) / self.cell_width()).ceil() as usize).min(self.nx);
        let j0 = (((c.min.y - self.region.min.y) / self.cell_height()) as usize).min(self.ny - 1);
        let j1 =
            (((c.max.y - self.region.min.y) / self.cell_height()).ceil() as usize).min(self.ny);
        for j in j0..j1 {
            for i in i0..i1 {
                let m = self.cell_mass(i, j);
                if m == 0.0 {
                    continue;
                }
                let frac = self.cell_rect(i, j).intersection_area(c) / cell_area;
                acc += m * frac;
            }
        }
        acc.min(1.0)
    }

    fn marginal_cdf(&self, axis: Axis, v: f64) -> f64 {
        let side = match axis {
            Axis::X => self.region.x_interval(),
            Axis::Y => self.region.y_interval(),
        };
        if v <= side.lo {
            return 0.0;
        }
        if v >= side.hi {
            return 1.0;
        }
        // Mass strictly below v = sum of full strips + partial strip.
        let r = match axis {
            Axis::X => Rect::from_intervals(Interval::new(side.lo, v), self.region.y_interval()),
            Axis::Y => Rect::from_intervals(self.region.x_interval(), Interval::new(side.lo, v)),
        };
        self.prob_in_rect(r)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> Point {
        // Cell by cumulative mass, then uniform within the cell.
        let u: f64 = rng.gen_range(0.0..1.0);
        let idx = self
            .cum
            .partition_point(|&c| c < u)
            .min(self.mass.len() - 1);
        let (i, j) = (idx % self.nx, idx / self.nx);
        let cell = self.cell_rect(i, j);
        let x = rng.gen_range(cell.min.x..=cell.max.x);
        let y = rng.gen_range(cell.min.y..=cell.max.y);
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn region() -> Rect {
        Rect::from_coords(0.0, 0.0, 4.0, 2.0)
    }

    #[test]
    fn flat_histogram_equals_uniform() {
        let h = HistogramPdf::flat(region(), 4, 2);
        let u = crate::uniform::UniformPdf::new(region());
        for r in [
            Rect::from_coords(0.0, 0.0, 1.0, 1.0),
            Rect::from_coords(0.5, 0.3, 3.7, 1.9),
            Rect::from_coords(-1.0, -1.0, 10.0, 10.0),
        ] {
            assert!(
                (h.prob_in_rect(r) - u.prob_in_rect(r)).abs() < 1e-12,
                "rect {r:?}"
            );
        }
    }

    #[test]
    fn skewed_mass_goes_where_weights_are() {
        // All mass in the left half.
        let w = [1.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0];
        let h = HistogramPdf::new(region(), 4, 2, &w);
        assert!((h.prob_in_rect(Rect::from_coords(0.0, 0.0, 2.0, 2.0)) - 1.0).abs() < 1e-12);
        assert_eq!(h.prob_in_rect(Rect::from_coords(2.0, 0.0, 4.0, 2.0)), 0.0);
    }

    #[test]
    fn partial_cell_overlap_is_fractional() {
        let h = HistogramPdf::flat(region(), 4, 2);
        // Half of one 1×1 cell: mass = (1/8) * 0.5.
        let r = Rect::from_coords(0.0, 0.0, 0.5, 1.0);
        assert!((h.prob_in_rect(r) - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn total_mass_is_one() {
        let w: Vec<f64> = (0..8).map(|k| (k + 1) as f64).collect();
        let h = HistogramPdf::new(region(), 4, 2, &w);
        assert!((h.prob_in_rect(region()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn density_matches_cell_mass() {
        let w = [3.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let h = HistogramPdf::new(region(), 4, 2, &w);
        // Cell (0,0) holds 0.3 of the mass over area 1.
        assert!((h.density(Point::new(0.5, 0.5)) - 0.3).abs() < 1e-12);
        assert_eq!(h.density(Point::new(-0.5, 0.5)), 0.0);
    }

    #[test]
    fn marginal_cdf_piecewise_linear() {
        let h = HistogramPdf::flat(region(), 4, 2);
        assert_eq!(h.marginal_cdf(Axis::X, 0.0), 0.0);
        assert!((h.marginal_cdf(Axis::X, 1.0) - 0.25).abs() < 1e-12);
        assert!((h.marginal_cdf(Axis::X, 1.5) - 0.375).abs() < 1e-12);
        assert_eq!(h.marginal_cdf(Axis::X, 4.0), 1.0);
    }

    #[test]
    fn quantile_consistent_with_cdf() {
        let w = [1.0, 2.0, 3.0, 4.0, 4.0, 3.0, 2.0, 1.0];
        let h = HistogramPdf::new(region(), 4, 2, &w);
        for &p in &[0.1, 0.33, 0.5, 0.77, 0.95] {
            let q = h.quantile(Axis::X, p);
            assert!((h.marginal_cdf(Axis::X, q) - p).abs() < 1e-9, "p={p}");
        }
    }

    #[test]
    fn sampling_respects_weights() {
        let w = [9.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]; // 90% in cell (0,0)
        let h = HistogramPdf::new(region(), 4, 2, &w);
        let mut rng = StdRng::seed_from_u64(3);
        const N: usize = 20_000;
        let mut in_first = 0usize;
        for _ in 0..N {
            let s = h.sample(&mut rng);
            assert!(h.region().contains_point(s));
            assert!(s.y <= 1.0 + 1e-12, "no mass in the top row");
            if s.x <= 1.0 {
                in_first += 1;
            }
        }
        let frac = in_first as f64 / N as f64;
        assert!((frac - 0.9).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn fit_recovers_observed_concentration() {
        use rand::Rng;
        let region = Rect::from_coords(0.0, 0.0, 100.0, 100.0);
        let mut rng = StdRng::seed_from_u64(41);
        // 90% of fixes in the lower-left quadrant, 10% scattered.
        let obs: Vec<Point> = (0..2_000)
            .map(|k| {
                if k % 10 != 0 {
                    Point::new(rng.gen_range(0.0..50.0), rng.gen_range(0.0..50.0))
                } else {
                    Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0))
                }
            })
            .collect();
        let h = HistogramPdf::fit(region, 10, 10, &obs, 0.5);
        let lower_left = h.prob_in_rect(Rect::from_coords(0.0, 0.0, 50.0, 50.0));
        assert!(lower_left > 0.85, "got {lower_left}");
        // Smoothing keeps the rest of the region supported.
        assert!(h.density(Point::new(90.0, 90.0)) > 0.0);
        assert!((h.prob_in_rect(region) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fit_ignores_out_of_region_observations() {
        let region = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        let obs = vec![Point::new(5.0, 5.0), Point::new(500.0, 500.0)];
        let h = HistogramPdf::fit(region, 2, 2, &obs, 0.0);
        // Only the in-region fix contributes: all mass in cell (1,1).
        assert!((h.prob_in_rect(Rect::from_coords(5.0, 5.0, 10.0, 10.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn fit_with_no_data_and_no_smoothing_panics() {
        let region = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        let _ = HistogramPdf::fit(region, 2, 2, &[], 0.0);
    }

    #[test]
    #[should_panic(expected = "weights length")]
    fn rejects_wrong_weight_count() {
        let _ = HistogramPdf::new(region(), 4, 2, &[1.0; 7]);
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn rejects_all_zero_weights() {
        let _ = HistogramPdf::new(region(), 2, 2, &[0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative_weights() {
        let _ = HistogramPdf::new(region(), 2, 2, &[1.0, -1.0, 1.0, 1.0]);
    }
}
