//! The **Refine** stage: qualification-probability evaluation.
//!
//! [`ProbabilityEvaluator`] unifies the paper's two evaluation methods
//! behind one interface, selected per query:
//!
//! * [`DualityEvaluator`] — the Section 4.2 enhanced method: Lemma 3
//!   for point objects, Lemma 4 / Eq. 8 for uncertain objects, both
//!   computed through the context's [`crate::integrate::Integrator`]
//!   (closed form, grid, or Monte-Carlo);
//! * [`BasicEvaluator`] — the Section 3.3 baseline integrating over the
//!   issuer region (Eq. 2 / Eq. 4) on a midpoint grid.

use iloc_uncertainty::{ObjectId, PointObject, UncertainObject};

use crate::eval::basic;
use crate::eval::constrained::{
    strategy1_prunes, strategy2_prunes, strategy3_prunes, PruneContext,
};
use crate::stats::QueryStats;

use super::{ExecutionContext, PreparedQuery};

/// Objects the pipeline can process: anything carrying a stable id for
/// the result set.
pub trait PipelineObject: Sync {
    /// The object's identifier as reported in [`crate::result::Match`].
    fn object_id(&self) -> ObjectId;

    /// Applies the built-in Section-5.2 pruning tests to this object,
    /// recording any elimination in `stats`. The default keeps the
    /// object — only objects with U-catalogs (uncertain objects) can be
    /// pruned without an integral.
    #[inline]
    fn try_section_5_2(&self, ctx: &PruneContext<'_>, stats: &mut QueryStats) -> bool {
        let _ = (ctx, stats);
        false
    }
}

impl PipelineObject for PointObject {
    fn object_id(&self) -> ObjectId {
        self.id
    }
}

impl PipelineObject for UncertainObject {
    fn object_id(&self) -> ObjectId {
        self.id
    }

    /// The paper's Section 5.2 stack in its published order —
    /// Strategy 2 (cheapest), then Strategy 1, then the Strategy 3
    /// product rule — with per-strategy elimination counters.
    #[inline]
    fn try_section_5_2(&self, ctx: &PruneContext<'_>, stats: &mut QueryStats) -> bool {
        if strategy2_prunes(self, ctx) {
            stats.pruned_s2 += 1;
            return true;
        }
        if strategy1_prunes(self, ctx) {
            stats.pruned_s1 += 1;
            return true;
        }
        if strategy3_prunes(self, ctx) {
            stats.pruned_s3 += 1;
            return true;
        }
        false
    }
}

/// Computes the qualification probability `pi` of one candidate.
///
/// Implementations draw any randomness from the context's RNG and
/// record their work in the context's stats, so a pipeline run is
/// deterministic per seed and fully cost-accounted.
pub trait ProbabilityEvaluator<O>: Sync {
    /// Refines one candidate.
    fn probability(&self, query: &PreparedQuery<'_>, object: &O, ctx: &mut ExecutionContext)
        -> f64;
}

/// The enhanced evaluator built on query–data duality (Section 4.2,
/// Lemmas 2–4), delegating the integral to the context's integrator.
#[derive(Debug, Clone, Copy, Default)]
pub struct DualityEvaluator;

impl ProbabilityEvaluator<PointObject> for DualityEvaluator {
    fn probability(
        &self,
        query: &PreparedQuery<'_>,
        object: &PointObject,
        ctx: &mut ExecutionContext,
    ) -> f64 {
        ctx.integrator.point_probability(
            query.issuer.pdf(),
            query.range,
            object.loc,
            &mut ctx.rng,
            &mut ctx.stats,
        )
    }
}

impl ProbabilityEvaluator<UncertainObject> for DualityEvaluator {
    fn probability(
        &self,
        query: &PreparedQuery<'_>,
        object: &UncertainObject,
        ctx: &mut ExecutionContext,
    ) -> f64 {
        ctx.integrator.object_probability(
            query.issuer.pdf(),
            query.range,
            object.pdf(),
            query.expanded,
            &mut ctx.rng,
            &mut ctx.stats,
        )
    }
}

/// The refine stage as a statically-dispatched enum: the paper's two
/// evaluation methods behind one `Copy` value, so the per-candidate
/// loop compiles to a direct (inlinable) call instead of a virtual one.
///
/// This is what the engines install; the [`ProbabilityEvaluator`]
/// trait remains for plans refining through custom evaluators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvaluatorKind {
    /// The Section 4.2 enhanced method ([`DualityEvaluator`]).
    Duality,
    /// The Section 3.3 baseline ([`BasicEvaluator`]).
    Basic {
        /// Sampling-grid resolution per axis.
        per_axis: usize,
    },
}

impl<O> ProbabilityEvaluator<O> for EvaluatorKind
where
    DualityEvaluator: ProbabilityEvaluator<O>,
    BasicEvaluator: ProbabilityEvaluator<O>,
{
    #[inline]
    fn probability(
        &self,
        query: &PreparedQuery<'_>,
        object: &O,
        ctx: &mut ExecutionContext,
    ) -> f64 {
        match *self {
            EvaluatorKind::Duality => DualityEvaluator.probability(query, object, ctx),
            EvaluatorKind::Basic { per_axis } => {
                BasicEvaluator { per_axis }.probability(query, object, ctx)
            }
        }
    }
}

/// The Section 3.3 baseline: direct numerical integration over the
/// issuer region with `per_axis`² midpoint samples (the expensive
/// method of Figure 8).
#[derive(Debug, Clone, Copy)]
pub struct BasicEvaluator {
    /// Sampling-grid resolution per axis.
    pub per_axis: usize,
}

impl ProbabilityEvaluator<PointObject> for BasicEvaluator {
    fn probability(
        &self,
        query: &PreparedQuery<'_>,
        object: &PointObject,
        ctx: &mut ExecutionContext,
    ) -> f64 {
        basic::point_probability(
            query.issuer.pdf(),
            query.range,
            object.loc,
            self.per_axis,
            &mut ctx.stats,
        )
    }
}

impl ProbabilityEvaluator<UncertainObject> for BasicEvaluator {
    fn probability(
        &self,
        query: &PreparedQuery<'_>,
        object: &UncertainObject,
        ctx: &mut ExecutionContext,
    ) -> f64 {
        basic::object_probability(
            query.issuer.pdf(),
            query.range,
            object.pdf(),
            self.per_axis,
            &mut ctx.stats,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrate::Integrator;
    use crate::query::{Issuer, RangeSpec};
    use iloc_geometry::{Point, Rect};
    use iloc_uncertainty::UniformPdf;

    #[test]
    fn evaluators_agree_on_uniform_point_case() {
        let issuer = Issuer::uniform(Rect::from_coords(0.0, 0.0, 100.0, 100.0));
        let range = RangeSpec::square(30.0);
        let query = PreparedQuery::new(&issuer, range);
        let object = PointObject::new(0u64, Point::new(110.0, 40.0));
        let mut ctx = ExecutionContext::new(Integrator::Auto);
        let dual = DualityEvaluator.probability(&query, &object, &mut ctx);
        let basic = BasicEvaluator { per_axis: 220 }.probability(&query, &object, &mut ctx);
        assert!(dual > 0.0 && dual < 1.0);
        assert!((dual - basic).abs() < 5e-3, "dual {dual} vs basic {basic}");
    }

    #[test]
    fn evaluators_agree_on_uniform_object_case() {
        let issuer = Issuer::uniform(Rect::from_coords(0.0, 0.0, 80.0, 80.0));
        let range = RangeSpec::square(25.0);
        let query = PreparedQuery::new(&issuer, range);
        let object = UncertainObject::new(
            1u64,
            UniformPdf::new(Rect::from_coords(70.0, 10.0, 130.0, 70.0)),
        );
        let mut ctx = ExecutionContext::new(Integrator::Auto);
        let dual = DualityEvaluator.probability(&query, &object, &mut ctx);
        let basic = BasicEvaluator { per_axis: 160 }.probability(&query, &object, &mut ctx);
        assert!(dual > 0.0 && dual < 1.0);
        assert!((dual - basic).abs() < 5e-3, "dual {dual} vs basic {basic}");
        // The duality path with a uniform issuer must not sample.
        assert_eq!(ctx.stats.mc_samples, 0);
    }
}
