//! # iloc-bench
//!
//! Experiment harness reproducing **every figure** of the paper's
//! evaluation (Section 6) plus the design-choice ablations listed in
//! DESIGN.md. The `reproduce` binary drives the full suite:
//!
//! ```text
//! cargo run -p iloc-bench --release --bin reproduce            # all figures
//! cargo run -p iloc-bench --release --bin reproduce -- fig11   # one figure
//! cargo run -p iloc-bench --release --bin reproduce -- --quick # scaled down
//! ```
//!
//! Absolute milliseconds differ from the paper's 2007 SunFire numbers;
//! the *shapes* — who wins, by what factor, where the curves bend — are
//! what EXPERIMENTS.md records and compares.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod c10k;
pub mod cluster;
pub mod config;
pub mod experiments;
pub mod harness;
pub mod net;
pub mod resilient;
pub mod subscribers;

pub use c10k::{C10kConfig, C10kReport};
pub use cluster::{ClusterConfig, ClusterReport};
pub use config::{Scale, TestBed};
pub use harness::{Row, Summary};
pub use net::{NetConfig, NetReport};
pub use resilient::ResilientClient;
pub use subscribers::{SubscribersConfig, SubscribersReport};
