//! Minkowski sums of axis-parallel rectangles (Section 4.1 of the paper).
//!
//! The paper's *query expansion* filter builds `R ⊕ U0`, the union of
//! all range queries issued from any position inside the issuer's
//! uncertainty region `U0`. For axis-parallel rectangles the sum is the
//! rectangle whose side intervals are the 1-D Minkowski sums of the
//! operands' sides — computable in constant time (the paper's "linear
//! time" remark specialises to O(1) for boxes).

use crate::rect::Rect;

/// Computes `a ⊕ b = {x + y | x ∈ a, y ∈ b}` for axis-parallel
/// rectangles.
///
/// Note that the sum of two *position* rectangles lives at the sum of
/// their positions; the query-expansion use sites therefore pass the
/// range rectangle *centred at the origin* together with `U0` (see
/// [`expand_query`]).
#[inline]
pub fn minkowski_sum(a: Rect, b: Rect) -> Rect {
    Rect::from_intervals(
        a.x_interval().minkowski_sum(b.x_interval()),
        a.y_interval().minkowski_sum(b.y_interval()),
    )
}

/// Builds the paper's expanded query range `R ⊕ U0` from the issuer's
/// uncertainty region `u0` and the query half-extents `(w, h)`.
///
/// Equivalent to `minkowski_sum(Rect::centered(ORIGIN, w, h), u0)`:
/// `U0` grown by `w` on the left/right and `h` on the top/bottom
/// (Figure 2 of the paper). Lemma 1: an object has non-zero
/// qualification probability iff it touches this rectangle.
#[inline]
pub fn expand_query(u0: Rect, w: f64, h: f64) -> Rect {
    debug_assert!(w >= 0.0 && h >= 0.0);
    u0.expand(w, h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    #[test]
    fn sum_of_boxes_adds_sides() {
        let a = Rect::from_coords(0.0, 0.0, 2.0, 2.0);
        let b = Rect::from_coords(-1.0, -1.0, 1.0, 1.0);
        assert_eq!(minkowski_sum(a, b), Rect::from_coords(-1.0, -1.0, 3.0, 3.0));
    }

    #[test]
    fn sum_with_empty_is_empty() {
        let a = Rect::from_coords(0.0, 0.0, 2.0, 2.0);
        assert!(minkowski_sum(a, Rect::EMPTY).is_empty());
    }

    #[test]
    fn expand_query_matches_origin_centred_sum() {
        let u0 = Rect::from_coords(10.0, 20.0, 14.0, 26.0);
        let (w, h) = (3.0, 1.0);
        let direct = expand_query(u0, w, h);
        let via_sum = minkowski_sum(Rect::centered(Point::ORIGIN, w, h), u0);
        assert_eq!(direct, via_sum);
        assert_eq!(direct, Rect::from_coords(7.0, 19.0, 17.0, 27.0));
    }

    #[test]
    fn expanded_query_is_union_of_all_ranges() {
        // Any range query issued from inside U0 must be contained in the
        // Minkowski sum, and the corners are attained.
        let u0 = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        let (w, h) = (2.0, 3.0);
        let sum = expand_query(u0, w, h);
        for &(x, y) in &[(0.0, 0.0), (10.0, 10.0), (5.0, 5.0), (0.0, 10.0)] {
            let q = Rect::centered(Point::new(x, y), w, h);
            assert!(sum.contains_rect(q), "range at ({x},{y}) escapes the sum");
        }
        assert_eq!(sum, Rect::from_coords(-2.0, -3.0, 12.0, 13.0));
    }
}
