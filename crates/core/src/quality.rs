//! Answer-quality metrics.
//!
//! The paper's companion work (Cheng et al., *Preserving user location
//! privacy in mobile data management infrastructures*, PET 2006 — cited
//! as reference \[6\]) defines service quality in terms of the objects'
//! qualification probabilities: an answer set of near-certain
//! probabilities is crisp, one of diffuse probabilities is vague. This
//! module provides those aggregate metrics so applications (e.g. the
//! `privacy_cloaking` example) can quantify the privacy ↔ quality
//! trade-off the introduction motivates.

use crate::result::QueryAnswer;

/// Aggregate quality of one probabilistic answer set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityReport {
    /// Number of returned objects.
    pub answers: usize,
    /// Mean qualification probability — 1.0 means every returned
    /// object is certainly in range.
    pub mean_probability: f64,
    /// Expected number of objects truly in range, `Σ pi`.
    pub expected_result_size: f64,
    /// Mean per-object binary entropy (nats): 0 when every returned
    /// probability is 0 or 1; maximal (`ln 2 ≈ 0.693`) when all sit at
    /// 0.5. A direct measure of answer vagueness.
    pub mean_entropy: f64,
}

/// Binary entropy `H(p) = −p·ln p − (1−p)·ln(1−p)` in nats.
fn binary_entropy(p: f64) -> f64 {
    let h = |x: f64| if x <= 0.0 { 0.0 } else { -x * x.ln() };
    h(p) + h(1.0 - p)
}

/// Computes the quality metrics of an answer.
pub fn assess(answer: &QueryAnswer) -> QualityReport {
    let n = answer.results.len();
    if n == 0 {
        return QualityReport {
            answers: 0,
            mean_probability: 0.0,
            expected_result_size: 0.0,
            mean_entropy: 0.0,
        };
    }
    let sum: f64 = answer.results.iter().map(|m| m.probability).sum();
    let ent: f64 = answer
        .results
        .iter()
        .map(|m| binary_entropy(m.probability.clamp(0.0, 1.0)))
        .sum();
    QualityReport {
        answers: n,
        mean_probability: sum / n as f64,
        expected_result_size: sum,
        mean_entropy: ent / n as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::Match;
    use iloc_uncertainty::ObjectId;

    fn answer(ps: &[f64]) -> QueryAnswer {
        QueryAnswer {
            results: ps
                .iter()
                .enumerate()
                .map(|(k, &p)| Match {
                    id: ObjectId(k as u64),
                    probability: p,
                })
                .collect(),
            ..Default::default()
        }
    }

    #[test]
    fn empty_answer_scores_zero() {
        let r = assess(&QueryAnswer::default());
        assert_eq!(r.answers, 0);
        assert_eq!(r.expected_result_size, 0.0);
    }

    #[test]
    fn certain_answers_have_no_entropy() {
        let r = assess(&answer(&[1.0, 1.0, 1.0]));
        assert_eq!(r.answers, 3);
        assert!((r.mean_probability - 1.0).abs() < 1e-12);
        assert!((r.expected_result_size - 3.0).abs() < 1e-12);
        assert_eq!(r.mean_entropy, 0.0);
    }

    #[test]
    fn half_probabilities_maximise_entropy() {
        let r = assess(&answer(&[0.5, 0.5]));
        assert!((r.mean_entropy - std::f64::consts::LN_2).abs() < 1e-12);
        assert!((r.mean_probability - 0.5).abs() < 1e-12);
    }

    #[test]
    fn entropy_between_extremes() {
        let crisp = assess(&answer(&[0.99, 0.98]));
        let vague = assess(&answer(&[0.6, 0.4]));
        assert!(crisp.mean_entropy < vague.mean_entropy);
    }

    #[test]
    fn expected_size_is_probability_mass() {
        let r = assess(&answer(&[0.25, 0.5, 0.75]));
        assert!((r.expected_result_size - 1.5).abs() < 1e-12);
    }
}
