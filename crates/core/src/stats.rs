//! Per-query cost accounting.
//!
//! The paper reports average response time `T`; we additionally expose
//! deterministic counters so the reproduced curves can be explained
//! (and asserted on) independently of machine speed.

use std::time::Duration;

use iloc_index::AccessStats;

/// Number of buckets in the refine-batch-size histogram.
pub const REFINE_BATCH_BUCKETS: usize = 8;

/// Histogram bucket for a refine batch of `n` surviving candidates.
///
/// Buckets are powers of four — `0`, `1..=3`, `4..=15`, `16..=63`,
/// `64..=255`, `256..=1023`, `1024..=4095`, `≥4096` — deterministic,
/// so the histogram participates in [`QueryStats::same_counters`].
#[inline]
pub fn refine_batch_bucket(n: usize) -> usize {
    match n {
        0 => 0,
        1..=3 => 1,
        4..=15 => 2,
        16..=63 => 3,
        64..=255 => 4,
        256..=1023 => 5,
        1024..=4095 => 6,
        _ => 7,
    }
}

/// Cost counters for one query execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryStats {
    /// Index-level accesses performed by the filter step.
    pub access: AccessStats,
    /// Number of per-object probability evaluations (refinement step).
    pub prob_evals: u64,
    /// Monte-Carlo samples drawn across all refinements.
    pub mc_samples: u64,
    /// Grid-integrator cells evaluated across all refinements.
    pub grid_cells: u64,
    /// Candidates discarded by pruning Strategy 1 (object-level
    /// p-bound tail test).
    pub pruned_s1: u64,
    /// Candidates discarded by pruning Strategy 2 (p-expanded-query
    /// containment test).
    pub pruned_s2: u64,
    /// Candidates discarded by pruning Strategy 3 (`qmin · dmin < Qp`
    /// product rule).
    pub pruned_s3: u64,
    /// Results dropped in refinement because `pi` fell below the
    /// threshold (or was zero for unconstrained queries).
    pub refined_out: u64,
    /// Wall-clock nanos of the filter stage (index probe + candidate
    /// sort). Like `elapsed`, timing is machine-dependent and excluded
    /// from [`QueryStats::same_counters`].
    pub filter_nanos: u64,
    /// Wall-clock nanos of the prune stage.
    pub prune_nanos: u64,
    /// Wall-clock nanos of the (batched) refine stage.
    pub refine_nanos: u64,
    /// Refine batch sizes (surviving candidates per execution) as a
    /// [`refine_batch_bucket`] histogram; deterministic, so included
    /// in [`QueryStats::same_counters`].
    pub refine_batches: [u64; REFINE_BATCH_BUCKETS],
    /// Wall-clock time of the whole query.
    pub elapsed: Duration,
}

impl QueryStats {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        QueryStats::default()
    }

    /// `true` when every deterministic counter equals `other`'s
    /// (wall-clock `elapsed` is excluded). The scratch-reuse property
    /// tests use this to pin reused-context executions to the exact
    /// cost accounting of fresh-context ones.
    pub fn same_counters(&self, other: &QueryStats) -> bool {
        self.access == other.access
            && self.prob_evals == other.prob_evals
            && self.mc_samples == other.mc_samples
            && self.grid_cells == other.grid_cells
            && self.pruned_s1 == other.pruned_s1
            && self.pruned_s2 == other.pruned_s2
            && self.pruned_s3 == other.pruned_s3
            && self.refined_out == other.refined_out
            && self.refine_batches == other.refine_batches
    }

    /// Merges counters from another query (used when averaging over a
    /// workload).
    pub fn absorb(&mut self, other: &QueryStats) {
        self.access.absorb(other.access);
        self.prob_evals += other.prob_evals;
        self.mc_samples += other.mc_samples;
        self.grid_cells += other.grid_cells;
        self.pruned_s1 += other.pruned_s1;
        self.pruned_s2 += other.pruned_s2;
        self.pruned_s3 += other.pruned_s3;
        self.refined_out += other.refined_out;
        self.filter_nanos += other.filter_nanos;
        self.prune_nanos += other.prune_nanos;
        self.refine_nanos += other.refine_nanos;
        for (mine, theirs) in self.refine_batches.iter_mut().zip(&other.refine_batches) {
            *mine += theirs;
        }
        self.elapsed += other.elapsed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut a = QueryStats::new();
        let mut b = QueryStats::new();
        b.prob_evals = 5;
        b.mc_samples = 100;
        b.pruned_s3 = 2;
        b.elapsed = Duration::from_millis(3);
        a.absorb(&b);
        a.absorb(&b);
        assert_eq!(a.prob_evals, 10);
        assert_eq!(a.mc_samples, 200);
        assert_eq!(a.pruned_s3, 4);
        assert_eq!(a.elapsed, Duration::from_millis(6));
    }
}
