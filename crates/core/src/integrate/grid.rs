//! Midpoint-rule quadrature over the integration domain.
//!
//! Deterministic alternative to Monte-Carlo for non-uniform pdfs: cut
//! the domain into `per_axis²` cells, evaluate the integrand at cell
//! centres. Exact rectangle masses (`prob_in_rect`) are still used for
//! the inner `Q(x, y)` factor, so only the outer integral is
//! approximated.

use iloc_geometry::{Point, Rect};
use iloc_uncertainty::LocationPdf;

use crate::query::RangeSpec;
use crate::stats::QueryStats;

/// Point-object probability via quadrature: integrates `f0` over
/// `R(loc) ∩ U0` with the midpoint rule.
pub fn point_probability(
    issuer_pdf: &dyn LocationPdf,
    range: RangeSpec,
    loc: Point,
    per_axis: usize,
    stats: &mut QueryStats,
) -> f64 {
    assert!(per_axis > 0, "grid resolution must be positive");
    let domain = issuer_pdf.region().intersect(range.at(loc));
    integrate_density(issuer_pdf, domain, per_axis, stats)
}

/// Uncertain-object probability via quadrature over `Ui ∩ (R ⊕ U0)`
/// (Lemma 4): `Σ fi(c) · Q(c) · ΔA` at cell centres `c`.
pub fn object_probability(
    issuer_pdf: &dyn LocationPdf,
    range: RangeSpec,
    object_pdf: &dyn LocationPdf,
    expanded: Rect,
    per_axis: usize,
    stats: &mut QueryStats,
) -> f64 {
    assert!(per_axis > 0, "grid resolution must be positive");
    let domain = object_pdf.region().intersect(expanded);
    if domain.is_empty() || domain.area() == 0.0 {
        return 0.0;
    }
    let dx = domain.width() / per_axis as f64;
    let dy = domain.height() / per_axis as f64;
    let da = dx * dy;
    let mut acc = 0.0;
    for j in 0..per_axis {
        for i in 0..per_axis {
            stats.grid_cells += 1;
            let c = Point::new(
                domain.min.x + (i as f64 + 0.5) * dx,
                domain.min.y + (j as f64 + 0.5) * dy,
            );
            let fi = object_pdf.density(c);
            if fi == 0.0 {
                continue;
            }
            let q = issuer_pdf.prob_in_rect(range.at(c));
            acc += fi * q * da;
        }
    }
    acc.clamp(0.0, 1.0)
}

/// Midpoint integral of a density over a rectangle.
fn integrate_density(
    pdf: &dyn LocationPdf,
    domain: Rect,
    per_axis: usize,
    stats: &mut QueryStats,
) -> f64 {
    if domain.is_empty() || domain.area() == 0.0 {
        return 0.0;
    }
    let dx = domain.width() / per_axis as f64;
    let dy = domain.height() / per_axis as f64;
    let da = dx * dy;
    let mut acc = 0.0;
    for j in 0..per_axis {
        for i in 0..per_axis {
            stats.grid_cells += 1;
            let c = Point::new(
                domain.min.x + (i as f64 + 0.5) * dx,
                domain.min.y + (j as f64 + 0.5) * dy,
            );
            acc += pdf.density(c) * da;
        }
    }
    acc.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc_geometry::minkowski::expand_query;
    use iloc_uncertainty::UniformPdf;

    #[test]
    fn point_probability_matches_exact_for_uniform() {
        let issuer = UniformPdf::new(Rect::from_coords(0.0, 0.0, 100.0, 100.0));
        let range = RangeSpec::square(30.0);
        let loc = Point::new(110.0, 50.0);
        let mut stats = QueryStats::new();
        let approx = point_probability(&issuer, range, loc, 200, &mut stats);
        let exact = issuer.prob_in_rect(range.at(loc));
        assert!(exact > 0.0);
        assert!((approx - exact).abs() < 1e-6, "{approx} vs {exact}");
        assert_eq!(stats.grid_cells, 200 * 200);
    }

    #[test]
    fn empty_domain_is_zero_with_no_work() {
        let issuer = UniformPdf::new(Rect::from_coords(0.0, 0.0, 10.0, 10.0));
        let range = RangeSpec::square(1.0);
        let mut stats = QueryStats::new();
        let p = point_probability(&issuer, range, Point::new(500.0, 500.0), 100, &mut stats);
        assert_eq!(p, 0.0);
        assert_eq!(stats.grid_cells, 0);
    }

    #[test]
    fn object_probability_converges_with_resolution() {
        let issuer = UniformPdf::new(Rect::from_coords(0.0, 0.0, 50.0, 50.0));
        let object = UniformPdf::new(Rect::from_coords(40.0, 10.0, 90.0, 60.0));
        let range = RangeSpec::square(20.0);
        let expanded = expand_query(issuer.region(), 20.0, 20.0);
        let exact = super::super::closed::uniform_uniform(
            issuer.region(),
            object.region(),
            range,
            expanded,
        );
        let mut s = QueryStats::new();
        let coarse = object_probability(&issuer, range, &object, expanded, 10, &mut s);
        let fine = object_probability(&issuer, range, &object, expanded, 160, &mut s);
        assert!((fine - exact).abs() < (coarse - exact).abs() + 1e-9);
        assert!((fine - exact).abs() < 1e-3, "fine {fine} vs exact {exact}");
    }
}
