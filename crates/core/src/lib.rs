//! # iloc-core
//!
//! The primary contribution of *Chen & Cheng, "Efficient Evaluation of
//! Imprecise Location-Dependent Queries" (ICDE 2007)*: evaluating range
//! queries whose **issuer's own location is uncertain**, returning
//! **qualification probabilities** for the objects in range.
//!
//! ## Query taxonomy (paper Definitions 3–6)
//!
//! | Query | Data | Result |
//! |-------|------|--------|
//! | IPQ   | point objects | `(Si, pi)`, `pi > 0` |
//! | IUQ   | uncertain objects | `(Oi, pi)`, `pi > 0` |
//! | C-IPQ | point objects | `Si` with `pi ≥ Qp` |
//! | C-IUQ | uncertain objects | `Oi` with `pi ≥ Qp` |
//!
//! ## Evaluation machinery
//!
//! * [`eval::basic`] — the paper's Section-3.3 baseline: numerical
//!   integration over the issuer region (Eq. 2 / Eq. 4).
//! * [`expand`] — query expansion: the Minkowski sum `R ⊕ U0`
//!   (Lemma 1) and the `p`-expanded-query (Definition 7 + Lemma 5).
//! * [`eval::duality`] — the query–data duality theorem (Lemmas 2–4),
//!   which collapses IPQ to one rectangle-mass lookup and IUQ to a
//!   single integral over `Ui ∩ (R ⊕ U0)` — exactly separable for
//!   uniform pdfs (Eq. 6 / Eq. 8).
//! * [`eval::constrained`] — the three C-IUQ pruning strategies of
//!   Section 5.2 built on p-bounds and U-catalogs.
//! * [`pipeline`] — the **unified query-execution pipeline**: every
//!   query type runs the same explicit filter → prune → refine plan,
//!   batchable across all cores with [`pipeline::execute_batch`].
//! * [`engine`] — [`engine::PointEngine`] and
//!   [`engine::UncertainEngine`], thin facades that tie the pipeline to
//!   the spatial indexes (R-tree, PTI) of `iloc-index`, maintained
//!   incrementally under inserts and removes.
//! * [`serve`] — the **sharded serving layer**: dynamic catalogs
//!   (arrive / depart / move) behind epoch-style snapshots,
//!   hash-partitioned across per-shard engines with id-ordered fan-in
//!   merging.
//! * [`durable`] — the **durability subsystem**: a write-ahead log on
//!   the serving layer's commit path plus periodic binary checkpoints,
//!   with crash recovery that replays through the normal commit path
//!   and therefore answers bit-identically after a restart.
//! * [`subscribe`] — the **subscription subsystem**: standing
//!   continuous queries over serving snapshots, each caching a safe
//!   envelope of candidates, re-evaluated incrementally only when a
//!   commit's dirty region stabs their envelope, and answering with
//!   deltas instead of full results.

// The workspace is unsafe-free except for the feature-gated SIMD
// refine kernels (`integrate::closed::simd`), which carry the only
// scoped `allow`.
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd", deny(unsafe_code))]
#![warn(missing_docs)]

pub mod continuous;
pub mod durable;
pub mod engine;
pub mod eval;
pub mod expand;
pub mod integrate;
pub mod pipeline;
pub mod quality;
pub mod query;
pub mod result;
pub mod serve;
pub mod stats;
pub mod subscribe;

pub use continuous::ContinuousIpq;
pub use durable::{
    CatalogRecovery, DurableCatalog, DurableObject, FsyncPolicy, StoreConfig, StoreError,
};
pub use engine::{PointEngine, UncertainEngine};
pub use expand::{minkowski_query, p_expanded_query};
pub use integrate::Integrator;
pub use pipeline::{
    execute_batch, BatchEngine, ExecutionContext, PointRequest, QueryPipeline, UncertainRequest,
};
pub use quality::{assess, QualityReport};
pub use query::{CipqStrategy, CiuqStrategy, Issuer, RangeSpec};
pub use result::{merge_partials_into, sort_matches, Match, QueryAnswer};
pub use serve::{ServeEngine, ShardServer, ShardedEngine, Snapshot, Update};
pub use stats::QueryStats;
pub use subscribe::{AnswerDelta, ContinuousEngine, SubId, SubscriptionRegistry};

/// Glob-import surface for applications.
pub mod prelude {
    pub use crate::continuous::ContinuousIpq;
    pub use crate::durable::{DurableCatalog, FsyncPolicy, StoreConfig};
    pub use crate::engine::{PointEngine, UncertainEngine};
    pub use crate::integrate::Integrator;
    pub use crate::pipeline::{
        execute_batch, BatchEngine, ExecutionContext, PointRequest, UncertainRequest,
    };
    pub use crate::quality::{assess, QualityReport};
    pub use crate::query::{CipqStrategy, CiuqStrategy, Issuer, RangeSpec};
    pub use crate::result::{Match, QueryAnswer};
    pub use crate::serve::{ServeEngine, ShardServer, ShardedEngine, Snapshot, Update};
    pub use crate::stats::QueryStats;
    pub use crate::subscribe::{AnswerDelta, ContinuousEngine, SubId, SubscriptionRegistry};
}
