//! Standalone query server over the standard datasets.
//!
//! ```text
//! cargo run --release -p iloc-server --bin iloc-server -- [flags]
//!
//! --addr HOST:PORT   bind address        (default 127.0.0.1:7207)
//! --points N         point catalog size  (default 62,556 — California)
//! --uncertain N      uncertain catalog   (default 53,145 — Long Beach)
//! --shards N         shards per catalog  (default 4)
//! --event-loops N    event-loop threads, each multiplexing many
//!                    connections (default 2; --workers is accepted
//!                    as a legacy alias)
//! --max-connections N  connection capacity across all loops
//!                    (default 16,384; the process raises its own
//!                    RLIMIT_NOFILE toward this before binding)
//! --push-backlog N   per-connection buffered-push byte budget;
//!                    exceeding it closes the subscriber instead of
//!                    silently dropping NOTIFY frames (default 1 MiB)
//! --seed N           dataset seed        (default 2007)
//! --idle-timeout S   reap connections idle for S seconds (default
//!                    300; 0 disables) — abandoned subscriber sockets
//!                    must not pin connection slots; clients keep a
//!                    quiet connection alive with PING
//! --data-dir PATH    durable store directory: every commit is
//!                    write-ahead logged before it publishes, and on
//!                    startup the catalogs recover from the newest
//!                    checkpoint plus log replay (the dataset flags
//!                    only seed a fresh directory)
//! --fsync POLICY     WAL fsync policy: always | every=N | off
//!                    (default always; only with --data-dir)
//! --checkpoint-every N   background-checkpoint a catalog every N
//!                    commits (default 256; 0 disables)
//! --quick            ~10x smaller catalogs (CI smoke)
//! --cluster-node K/N serve node K of an N-node cluster: keep only
//!                    the objects whose id hashes to node K under
//!                    the cluster partition (`shard_of(id, N)`), so
//!                    N such processes behind an `iloc-router` hold
//!                    the standard datasets exactly once (see
//!                    docs/CLUSTER.md)
//! ```
//!
//! With `--data-dir`, SIGTERM / SIGINT shut down gracefully: stop
//! accepting, drain in-flight frames, fsync the log tail, write a
//! clean checkpoint, exit 0.
//!
//! The process registers the counting global allocator, so its stats
//! frames report real allocation counts — a remote load generator can
//! gate on "zero steady-state allocations per request" without sharing
//! the server's address space (the CI smoke job does).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use iloc_core::durable::FsyncPolicy;
use iloc_core::serve::shard_of;
use iloc_datagen::{california_points, long_beach_rects, uniform_objects};
use iloc_server::alloc_count::{self, CountingAllocator};
use iloc_server::server::{DurabilityOptions, QueryServer, RecoveryInfo, ServerConfig};
use iloc_uncertainty::PointObject;

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Set by the signal handler; the main thread polls it.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

// Minimal libc-free signal registration (std has no public API for
// it). `signal(2)` with a plain flag-setting handler is exactly the
// async-signal-safe subset this binary needs.
extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

fn main() {
    alloc_count::mark_installed();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let number = |name: &str, default: usize| -> usize {
        value(name)
            .map(|v| v.parse().unwrap_or_else(|_| die(name)))
            .unwrap_or(default)
    };

    let quick = flag("--quick");
    let addr = value("--addr").unwrap_or_else(|| "127.0.0.1:7207".to_string());
    let points = number(
        "--points",
        if quick {
            6_200
        } else {
            iloc_datagen::CALIFORNIA_SIZE
        },
    );
    let uncertain = number(
        "--uncertain",
        if quick {
            5_300
        } else {
            iloc_datagen::LONG_BEACH_SIZE
        },
    );
    let shards = number("--shards", 4);
    // `--workers` is the pre-event-loop spelling; still honored so
    // existing wrappers keep working.
    let event_loops = number("--event-loops", number("--workers", 2));
    let max_connections = number("--max-connections", 16_384);
    let push_backlog = number("--push-backlog", 1 << 20);
    let seed = number("--seed", 2007) as u64;
    let idle_timeout = match number("--idle-timeout", 300) {
        0 => None,
        secs => Some(Duration::from_secs(secs as u64)),
    };
    let cluster_node = value("--cluster-node").map(|v| {
        let parse = || -> Option<(usize, usize)> {
            let (k, n) = v.split_once('/')?;
            let (k, n) = (k.parse().ok()?, n.parse().ok()?);
            (k < n).then_some((k, n))
        };
        parse().unwrap_or_else(|| die("--cluster-node"))
    });
    let data_dir = value("--data-dir");
    let fsync = value("--fsync")
        .map(|v| FsyncPolicy::parse(&v).unwrap_or_else(|| die("--fsync")))
        .unwrap_or(FsyncPolicy::Always);
    let checkpoint_every = number("--checkpoint-every", 256) as u64;

    eprintln!(
        "building catalogs: {points} points (California), {uncertain} uncertain (Long Beach), \
         {shards} shards"
    );
    let mut point_objects: Vec<PointObject> = california_points(points, seed)
        .into_iter()
        .enumerate()
        .map(|(k, p)| PointObject::new(k as u64, p))
        .collect();
    let mut uncertain_objects = uniform_objects(&long_beach_rects(uncertain, seed + 1));
    if let Some((k, n)) = cluster_node {
        point_objects.retain(|o| shard_of(o.id, n) == k);
        uncertain_objects.retain(|o| shard_of(o.id, n) == k);
        eprintln!(
            "cluster node {k}/{n}: serving {} points, {} uncertain",
            point_objects.len(),
            uncertain_objects.len()
        );
    }

    let server = match data_dir {
        Some(dir) => {
            let durability = DurabilityOptions {
                data_dir: dir.clone().into(),
                fsync,
                checkpoint_every,
            };
            let (server, recovery) =
                QueryServer::open(point_objects, uncertain_objects, shards, &durability)
                    .unwrap_or_else(|e| {
                        eprintln!("durable open failed in {dir}: {e}");
                        std::process::exit(1);
                    });
            report_recovery(&dir, fsync, &recovery);
            server
        }
        None => QueryServer::new(point_objects, uncertain_objects, shards),
    };

    // Each connection is one fd (plus listener, wakers, and any WAL
    // handles); ask the kernel for headroom before binding.
    match iloc_server::poll::raise_nofile_limit(max_connections as u64 + 64) {
        Ok(limit) => {
            if limit < max_connections as u64 + 64 {
                eprintln!(
                    "warning: RLIMIT_NOFILE is {limit}; --max-connections {max_connections} may \
                     hit EMFILE under full load"
                );
            }
        }
        Err(e) => eprintln!("warning: could not read/raise RLIMIT_NOFILE: {e}"),
    }

    let config = ServerConfig {
        addr,
        event_loops,
        max_connections,
        push_backlog,
        idle_timeout,
        ..ServerConfig::loopback()
    };
    let handle = server.start(&config).unwrap_or_else(|e| {
        eprintln!("bind failed: {e}");
        std::process::exit(1);
    });

    // SAFETY contract is the C one: the handler only touches an
    // atomic flag, which is async-signal-safe.
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }

    // Announce readiness on stdout so wrappers can wait for it.
    println!("listening on {}", handle.addr());

    // Poll instead of joining so the signal flag is honored: on
    // SIGTERM/SIGINT the handle's shutdown drains in-flight frames,
    // flushes the WAL tail and writes a clean final checkpoint.
    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("signal received: draining, flushing WAL, writing final checkpoint");
    handle.shutdown();
    eprintln!("clean shutdown");
}

fn report_recovery(dir: &str, fsync: FsyncPolicy, recovery: &RecoveryInfo) {
    for (name, r) in [
        ("point", &recovery.point),
        ("uncertain", &recovery.uncertain),
    ] {
        if r.recovered {
            eprintln!(
                "recovered {name} catalog from {dir}: epoch {} (checkpoint {}, {} batches / {} \
                 updates replayed{}), {} objects, fsync {fsync}",
                r.epoch,
                r.checkpoint_epoch,
                r.replayed_batches,
                r.replayed_updates,
                if r.wal_truncated {
                    ", torn tail truncated"
                } else {
                    ""
                },
                r.objects,
            );
        } else {
            eprintln!(
                "initialized {name} catalog in {dir}: {} objects at epoch {}, fsync {fsync}",
                r.objects, r.epoch,
            );
        }
    }
}

fn die(name: &str) -> ! {
    eprintln!("invalid value for {name}");
    std::process::exit(2);
}
