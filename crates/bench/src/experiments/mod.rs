//! One module per paper figure plus the design-choice ablations.
//!
//! Every `run` function takes the shared [`TestBed`](crate::TestBed),
//! prints its table in the `reproduce` output format, and returns the
//! rows so integration tests can assert on curve *shapes* rather than
//! absolute timings.

pub mod ablations;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;

/// Issuer-region half-sizes swept on the x-axis of Figures 8–10
/// (the paper sweeps 0–1000; 0 would make the issuer exact, which is
/// outside the imprecise-query model, so the sweep starts at 100).
pub const U_SWEEP: [f64; 10] = [
    100.0, 200.0, 300.0, 400.0, 500.0, 600.0, 700.0, 800.0, 900.0, 1000.0,
];

/// Probability thresholds swept on the x-axis of Figures 11–13.
pub const QP_SWEEP: [f64; 11] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// Range half-sizes for the multi-series Figures 9–10.
pub const W_SERIES: [f64; 3] = [500.0, 1000.0, 1500.0];
