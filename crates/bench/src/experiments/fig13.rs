//! **Figure 13** — C-IPQ under a non-uniform (Gaussian) issuer pdf,
//! evaluated with Monte-Carlo integration (the paper's sensitivity
//! analysis calls for ≥200 samples per C-IPQ evaluation).
//!
//! Paper: same ordering as Figure 11 (p-expanded-query below Minkowski
//! sum at every threshold) but at ~20× higher absolute cost because
//! every candidate now needs hundreds of samples instead of one area
//! ratio. Expected reproduction shape: both curves far above their
//! Figure-11 counterparts; p-expanded still wins and falls with `Qp`.

use iloc_core::integrate::PAPER_MC_SAMPLES_POINT;
use iloc_core::{CipqStrategy, Integrator, Issuer, RangeSpec};
use iloc_datagen::WorkloadGen;

use crate::config::{TestBed, DEFAULT_U, DEFAULT_W};
use crate::experiments::QP_SWEEP;
use crate::harness::{print_table, Row, Summary};

/// Runs the experiment and returns the rows.
pub fn run(bed: &TestBed) -> Vec<Row> {
    let range = RangeSpec::square(DEFAULT_W);
    let mc = Integrator::MonteCarlo {
        samples: PAPER_MC_SAMPLES_POINT,
    };
    let mut rows = Vec::new();
    for &qp in &QP_SWEEP {
        let issuers = WorkloadGen::new(1300).issuer_regions(bed.scale.mc_queries, DEFAULT_U);
        let s_mink = Summary::collect(bed.scale.mc_queries, |q| {
            bed.california.cipq_with(
                &Issuer::gaussian(issuers[q]),
                range,
                qp,
                CipqStrategy::MinkowskiSum,
                mc,
            )
        });
        rows.push(Row {
            x: qp,
            series: "Minkowski sum (Gaussian/MC)".into(),
            summary: s_mink,
        });
        let s_pexp = Summary::collect(bed.scale.mc_queries, |q| {
            bed.california.cipq_with(
                &Issuer::gaussian(issuers[q]),
                range,
                qp,
                CipqStrategy::PExpanded,
                mc,
            )
        });
        rows.push(Row {
            x: qp,
            series: "p-expanded-query (Gaussian/MC)".into(),
            summary: s_pexp,
        });
    }
    print_table(
        "Figure 13: T vs Qp under Gaussian issuer pdf (C-IPQ, Monte-Carlo)",
        "probability threshold Qp",
        &rows,
    );
    rows
}
