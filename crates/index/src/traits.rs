//! The common interface all spatial indexes implement.

use iloc_geometry::Rect;

use crate::stats::AccessStats;

/// Reusable index-probe state: the DFS stack of node indices plus an
/// epoch-marked dedup table.
///
/// Hierarchical indexes (`RTree`, `Pti`) need a stack of pending nodes
/// per probe, and the grid file needs a per-entry "already reported"
/// table; allocating either anew for every query shows up directly in
/// the hot path. Callers that probe repeatedly keep one
/// `TraversalScratch` alive and pass it to
/// [`RangeIndex::query_range_scratch`] — after warm-up the probe then
/// performs no heap allocation. Backends that need neither ignore it.
#[derive(Debug, Clone, Default)]
pub struct TraversalScratch {
    /// Pending node arena indices (empty between probes).
    pub(crate) stack: Vec<usize>,
    /// Epoch-stamped dedup marks (`marks[e] == epoch` means entry `e`
    /// was already reported this probe); stamping a new epoch clears
    /// the whole table in O(1).
    pub(crate) marks: Vec<u64>,
    /// The current probe's epoch.
    pub(crate) epoch: u64,
}

impl TraversalScratch {
    /// A scratch with no retained capacity.
    pub fn new() -> Self {
        TraversalScratch::default()
    }

    /// Starts a new dedup epoch covering entry indices `0..n`,
    /// growing the mark table as needed (the only allocation, and only
    /// when `n` exceeds every previous probe's).
    pub(crate) fn begin_dedup(&mut self, n: usize) {
        if self.marks.len() < n {
            self.marks.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // One wraparound every 2^64 probes: reset stale stamps.
            self.marks.fill(0);
            self.epoch = 1;
        }
    }

    /// Marks entry `e`; returns `true` the first time it is seen in
    /// the current epoch.
    #[inline]
    pub(crate) fn mark(&mut self, e: usize) -> bool {
        if self.marks[e] == self.epoch {
            false
        } else {
            self.marks[e] = self.epoch;
            true
        }
    }
}

/// A spatial index over items with rectangular extents (a point object
/// is a degenerate rectangle).
///
/// The paper's query pipeline needs the **range filter** — report
/// every stored item whose extent overlaps a query rectangle (the
/// Minkowski sum `R ⊕ U0` or a `p`-expanded query); probability
/// refinement happens above the index. The serving layer additionally
/// needs **dynamic maintenance**: [`RangeIndex::insert`] and
/// [`RangeIndex::remove`] keep the index usable under
/// arrival/departure/move streams without a rebuild. Every backend
/// must answer queries identically (up to candidate order) to a
/// from-scratch rebuild on the same live set — the conformance suite
/// in `tests/conformance.rs` enforces this for all four backends.
pub trait RangeIndex<T: Copy> {
    /// Number of stored items.
    fn len(&self) -> usize;

    /// Inserts one item with the given extent.
    ///
    /// # Panics
    ///
    /// Panics when `extent` is empty or non-finite.
    fn insert(&mut self, extent: Rect, item: T);

    /// Removes one stored entry matching `(extent, item)` exactly;
    /// returns `true` when an entry was found and removed. When
    /// several identical entries exist, one of them is removed.
    fn remove(&mut self, extent: Rect, item: T) -> bool
    where
        T: PartialEq;

    /// `true` when the index stores nothing.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes every item whose extent overlaps `query` into `out`,
    /// updating `stats` with the logical accesses performed.
    fn query_range_into(&self, query: Rect, stats: &mut AccessStats, out: &mut Vec<T>);

    /// Like [`RangeIndex::query_range_into`], but traversal state comes
    /// from (and returns to) `scratch`, so repeated probes through a
    /// warm scratch are allocation-free. The default forwards to
    /// `query_range_into`; hierarchical indexes override it.
    fn query_range_scratch(
        &self,
        query: Rect,
        stats: &mut AccessStats,
        scratch: &mut TraversalScratch,
        out: &mut Vec<T>,
    ) {
        let _ = scratch;
        self.query_range_into(query, stats, out);
    }

    /// Convenience wrapper returning a fresh vector.
    fn query_range(&self, query: Rect, stats: &mut AccessStats) -> Vec<T> {
        let mut out = Vec::new();
        self.query_range_into(query, stats, &mut out);
        out
    }
}
