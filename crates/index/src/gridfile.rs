//! A grid file (Nievergelt, Hinterberger & Sevcik, TODS'84) —
//! simplified to a uniform directory, which is sufficient for the
//! paper's use of it as an alternative filter index.
//!
//! The data space is cut into `nx × ny` equal cells; each cell lists
//! every entry whose extent overlaps it. A range query visits the cells
//! the query rectangle overlaps and dedupes the union of their lists.
//!
//! Extents need not lie inside `space`: spans are clamped, so an
//! out-of-space extent lands in the nearest border cells (queries stay
//! correct, only the directory's selectivity degrades). Entries live in
//! a slot arena; removals tombstone their slot (reused by later
//! inserts), so the directory never needs rebuilding under churn.

use iloc_geometry::Rect;

use crate::stats::AccessStats;
use crate::traits::{RangeIndex, TraversalScratch};

/// Uniform-directory grid file.
#[derive(Debug, Clone)]
pub struct GridFile<T> {
    space: Rect,
    nx: usize,
    ny: usize,
    cells: Vec<Vec<u32>>,
    /// Slot arena; tombstoned slots hold [`Rect::EMPTY`] and are
    /// unreachable from any cell list.
    entries: Vec<(Rect, T)>,
    /// Tombstoned slots available for reuse.
    free: Vec<u32>,
    /// Live entry count.
    len: usize,
}

impl<T: Copy> GridFile<T> {
    /// Builds a grid file over `space` with an `nx × ny` directory.
    ///
    /// # Panics
    ///
    /// Panics when the directory dimensions are zero, `space` has zero
    /// area, or an entry extent is non-finite.
    pub fn new(space: Rect, nx: usize, ny: usize, entries: Vec<(Rect, T)>) -> Self {
        assert!(nx > 0 && ny > 0, "grid dimensions must be positive");
        assert!(space.area() > 0.0, "space must have positive area");
        let mut gf = GridFile {
            space,
            nx,
            ny,
            cells: vec![Vec::new(); nx * ny],
            entries: Vec::with_capacity(entries.len()),
            free: Vec::new(),
            len: 0,
        };
        for (extent, item) in entries {
            gf.insert(extent, item);
        }
        gf
    }

    /// Directory dimensions.
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Inserts one item, reusing a tombstoned slot when available.
    ///
    /// # Panics
    ///
    /// Panics when `extent` is empty or non-finite (an empty extent
    /// would overlap no cell and leak from the directory).
    pub fn insert(&mut self, extent: Rect, item: T) {
        assert!(
            extent.is_finite() && !extent.is_empty(),
            "extent must be finite and non-empty"
        );
        let slot = match self.free.pop() {
            Some(slot) => {
                self.entries[slot as usize] = (extent, item);
                slot
            }
            None => {
                self.entries.push((extent, item));
                (self.entries.len() - 1) as u32
            }
        };
        let (i0, i1, j0, j1) = cell_span(self.space, self.nx, self.ny, extent);
        for j in j0..=j1 {
            for i in i0..=i1 {
                self.cells[j * self.nx + i].push(slot);
            }
        }
        self.len += 1;
    }

    /// Removes one stored entry matching `(extent, item)` exactly;
    /// returns `true` when an entry was found and removed.
    pub fn remove(&mut self, extent: Rect, item: T) -> bool
    where
        T: PartialEq,
    {
        if !extent.is_finite() {
            return false; // Tombstones are non-finite; never match one.
        }
        // Every cell the extent overlaps lists its slot, so probing a
        // single cell of the span bounds the search to that cell's
        // occupancy instead of the whole arena.
        let (i0, i1, j0, j1) = cell_span(self.space, self.nx, self.ny, extent);
        let Some(slot) = self.cells[j0 * self.nx + i0]
            .iter()
            .copied()
            .find(|&e| self.entries[e as usize] == (extent, item))
        else {
            return false;
        };
        for j in j0..=j1 {
            for i in i0..=i1 {
                let cell = &mut self.cells[j * self.nx + i];
                if let Some(pos) = cell.iter().position(|&e| e == slot) {
                    cell.swap_remove(pos);
                }
            }
        }
        // Tombstone: EMPTY is non-finite, so no insert can collide and
        // no future `remove` scan can match the stale pair.
        self.entries[slot as usize].0 = Rect::EMPTY;
        self.free.push(slot);
        self.len -= 1;
        true
    }
}

/// Inclusive cell index span overlapped by `r` (clamped into range).
fn cell_span(space: Rect, nx: usize, ny: usize, r: Rect) -> (usize, usize, usize, usize) {
    let cw = space.width() / nx as f64;
    let ch = space.height() / ny as f64;
    let clampi = |v: f64, n: usize| (v as isize).clamp(0, n as isize - 1) as usize;
    let i0 = clampi(((r.min.x - space.min.x) / cw).floor(), nx);
    let i1 = clampi(((r.max.x - space.min.x) / cw).floor(), nx);
    let j0 = clampi(((r.min.y - space.min.y) / ch).floor(), ny);
    let j1 = clampi(((r.max.y - space.min.y) / ch).floor(), ny);
    (i0, i1, j0, j1)
}

impl<T: Copy> RangeIndex<T> for GridFile<T> {
    fn len(&self) -> usize {
        self.len
    }

    fn insert(&mut self, extent: Rect, item: T) {
        GridFile::insert(self, extent, item);
    }

    fn remove(&mut self, extent: Rect, item: T) -> bool
    where
        T: PartialEq,
    {
        GridFile::remove(self, extent, item)
    }

    fn query_range_into(&self, query: Rect, stats: &mut AccessStats, out: &mut Vec<T>) {
        self.query_range_scratch(query, stats, &mut TraversalScratch::new(), out);
    }

    fn query_range_scratch(
        &self,
        query: Rect,
        stats: &mut AccessStats,
        scratch: &mut TraversalScratch,
        out: &mut Vec<T>,
    ) {
        if self.len == 0 || query.is_empty() {
            return;
        }
        // The span clamp maps any finite query into the directory, so
        // out-of-space queries still probe the border cells (where
        // out-of-space extents live).
        let (i0, i1, j0, j1) = cell_span(self.space, self.nx, self.ny, query);
        scratch.begin_dedup(self.entries.len());
        for j in j0..=j1 {
            for i in i0..=i1 {
                stats.buckets_visited += 1;
                for &e in &self.cells[j * self.nx + i] {
                    let e = e as usize;
                    if !scratch.mark(e) {
                        continue;
                    }
                    stats.items_tested += 1;
                    let (extent, item) = self.entries[e];
                    if extent.overlaps(query) {
                        stats.candidates += 1;
                        out.push(item);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveIndex;
    use iloc_geometry::Point;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn space() -> Rect {
        Rect::from_coords(0.0, 0.0, 100.0, 100.0)
    }

    #[test]
    fn finds_points_in_cells() {
        let entries = vec![
            (Rect::from_point(Point::new(10.0, 10.0)), 1usize),
            (Rect::from_point(Point::new(90.0, 90.0)), 2),
        ];
        let gf = GridFile::new(space(), 10, 10, entries);
        assert_eq!(gf.len(), 2);
        assert_eq!(gf.dims(), (10, 10));
        let mut stats = AccessStats::new();
        let hits = gf.query_range(Rect::from_coords(0.0, 0.0, 20.0, 20.0), &mut stats);
        assert_eq!(hits, vec![1]);
        assert!(stats.buckets_visited >= 1);
    }

    #[test]
    fn spanning_rect_not_duplicated() {
        // An extent covering many cells must be reported once.
        let entries = vec![(Rect::from_coords(5.0, 5.0, 95.0, 95.0), 7usize)];
        let gf = GridFile::new(space(), 10, 10, entries);
        let mut stats = AccessStats::new();
        let hits = gf.query_range(Rect::from_coords(0.0, 0.0, 100.0, 100.0), &mut stats);
        assert_eq!(hits, vec![7]);
        assert_eq!(stats.items_tested, 1);
    }

    #[test]
    fn matches_oracle_on_random_data() {
        let mut rng = StdRng::seed_from_u64(9);
        let entries: Vec<(Rect, usize)> = (0..800)
            .map(|k| {
                let x = rng.gen_range(0.0..95.0);
                let y = rng.gen_range(0.0..95.0);
                (
                    Rect::from_coords(
                        x,
                        y,
                        x + rng.gen_range(0.0..5.0),
                        y + rng.gen_range(0.0..5.0),
                    ),
                    k,
                )
            })
            .collect();
        let gf = GridFile::new(space(), 16, 16, entries.clone());
        let oracle = NaiveIndex::new(entries);
        for _ in 0..100 {
            let x = rng.gen_range(-10.0..110.0);
            let y = rng.gen_range(-10.0..110.0);
            let q = Rect::from_coords(x, y, x + 15.0, y + 15.0);
            let mut s1 = AccessStats::new();
            let mut s2 = AccessStats::new();
            let mut a = gf.query_range(q, &mut s1);
            let mut b = oracle.query_range(q, &mut s2);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "query {q:?}");
        }
    }

    #[test]
    fn query_outside_space_is_empty() {
        let entries = vec![(Rect::from_point(Point::new(50.0, 50.0)), 1usize)];
        let gf = GridFile::new(space(), 4, 4, entries);
        let mut stats = AccessStats::new();
        // The span clamp sends the probe to the border cells; no
        // in-space entry can match.
        assert!(gf
            .query_range(Rect::from_coords(200.0, 200.0, 300.0, 300.0), &mut stats)
            .is_empty());
        assert_eq!(stats.buckets_visited, 1);
    }

    #[test]
    fn out_of_space_entries_are_clamped_not_rejected() {
        // An extent beyond the directory lands in border cells and is
        // still found, both by in-space and out-of-space queries.
        let far = Rect::from_point(Point::new(500.0, 50.0));
        let gf = GridFile::new(space(), 4, 4, vec![(far, 1usize)]);
        let mut stats = AccessStats::new();
        assert_eq!(
            gf.query_range(Rect::from_coords(400.0, 0.0, 600.0, 100.0), &mut stats),
            vec![1]
        );
        let mut stats = AccessStats::new();
        assert!(gf
            .query_range(Rect::from_coords(0.0, 0.0, 100.0, 40.0), &mut stats)
            .is_empty());
    }

    #[test]
    fn degenerate_query_rect_finds_touching_entries() {
        let entries = vec![(Rect::from_coords(10.0, 10.0, 20.0, 20.0), 3usize)];
        let gf = GridFile::new(space(), 8, 8, entries);
        let mut stats = AccessStats::new();
        // A zero-area query on the entry's corner still overlaps it
        // (closed-region semantics).
        assert_eq!(
            gf.query_range(Rect::from_point(Point::new(20.0, 20.0)), &mut stats),
            vec![3]
        );
        // An actually-empty query reports nothing.
        let mut stats = AccessStats::new();
        assert!(gf.query_range(Rect::EMPTY, &mut stats).is_empty());
    }

    #[test]
    fn remove_tombstones_and_reuses_slots() {
        let mut gf = GridFile::new(
            space(),
            4,
            4,
            vec![
                (Rect::from_coords(5.0, 5.0, 95.0, 95.0), 1usize),
                (Rect::from_point(Point::new(50.0, 50.0)), 2),
            ],
        );
        assert!(!gf.remove(Rect::from_point(Point::new(1.0, 1.0)), 1));
        assert!(!gf.remove(Rect::EMPTY, 1));
        assert!(gf.remove(Rect::from_coords(5.0, 5.0, 95.0, 95.0), 1));
        assert_eq!(gf.len(), 1);
        let mut stats = AccessStats::new();
        assert_eq!(
            gf.query_range(Rect::from_coords(0.0, 0.0, 100.0, 100.0), &mut stats),
            vec![2]
        );
        // The tombstoned slot is reused by the next insert.
        gf.insert(Rect::from_point(Point::new(10.0, 90.0)), 3);
        assert_eq!(gf.entries.len(), 2);
        assert_eq!(gf.len(), 2);
        let mut stats = AccessStats::new();
        let mut hits = gf.query_range(Rect::from_coords(0.0, 0.0, 100.0, 100.0), &mut stats);
        hits.sort_unstable();
        assert_eq!(hits, vec![2, 3]);
    }

    #[test]
    #[should_panic(expected = "finite and non-empty")]
    fn rejects_empty_extents() {
        // An inverted (empty but finite) extent would overlap no cell
        // and leak from the directory; inserts must reject it.
        let mut gf: GridFile<usize> = GridFile::new(space(), 4, 4, Vec::new());
        gf.insert(Rect::from_coords(80.0, 80.0, 5.0, 5.0), 9);
    }

    #[test]
    fn dirty_scratch_probes_match_fresh_ones() {
        let mut rng = StdRng::seed_from_u64(17);
        let entries: Vec<(Rect, usize)> = (0..300)
            .map(|k| {
                let x = rng.gen_range(0.0..90.0);
                let y = rng.gen_range(0.0..90.0);
                (Rect::from_coords(x, y, x + 8.0, y + 8.0), k)
            })
            .collect();
        let gf = GridFile::new(space(), 8, 8, entries);
        let mut scratch = TraversalScratch::new();
        for _ in 0..50 {
            let x = rng.gen_range(-5.0..95.0);
            let y = rng.gen_range(-5.0..95.0);
            let q = Rect::from_coords(x, y, x + 12.0, y + 12.0);
            let mut s1 = AccessStats::new();
            let mut s2 = AccessStats::new();
            let mut warm = Vec::new();
            gf.query_range_scratch(q, &mut s1, &mut scratch, &mut warm);
            let fresh = gf.query_range(q, &mut s2);
            assert_eq!(warm, fresh);
            assert_eq!(s1, s2);
        }
    }
}
