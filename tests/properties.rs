//! Property-based tests (proptest) over the workspace's core
//! invariants: geometry algebra, the duality theorem, closed-form vs
//! numerical integration, p-bound semantics, and pruning soundness.

use iloc::core::eval::constrained::{try_prune, PruneContext, PruneOutcome};
use iloc::core::expand::{minkowski_query, p_expanded_query};
use iloc::core::integrate::{closed, Integrator};
use iloc::core::QueryStats;
use iloc::geometry::{Interval, PiecewiseLinear, Point, Rect};
use iloc::prelude::*;
use iloc::uncertainty::{Axis, LocationPdf, PBound};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a finite coordinate in the data space.
fn coord() -> impl Strategy<Value = f64> {
    -1_000.0..11_000.0f64
}

/// Strategy: a non-degenerate rectangle with half-extents in
/// `[1, 500]`.
fn rect() -> impl Strategy<Value = Rect> {
    (coord(), coord(), 1.0..500.0f64, 1.0..500.0f64)
        .prop_map(|(x, y, w, h)| Rect::centered(Point::new(x, y), w, h))
}

/// Strategy: a range spec with half-extents in `[1, 800]`.
fn range_spec() -> impl Strategy<Value = RangeSpec> {
    (1.0..800.0f64, 1.0..800.0f64).prop_map(|(w, h)| RangeSpec::new(w, h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Lemma 2: range membership is symmetric in query/data roles.
    #[test]
    fn duality_symmetry(ax in coord(), ay in coord(), bx in coord(), by in coord(), r in range_spec()) {
        let a = Point::new(ax, ay);
        let b = Point::new(bx, by);
        prop_assert_eq!(r.at(a).contains_point(b), r.at(b).contains_point(a));
    }

    /// Rect algebra: intersection is commutative, contained in both
    /// operands, and contained in the hull.
    #[test]
    fn rect_algebra(a in rect(), b in rect()) {
        let i1 = a.intersect(b);
        let i2 = b.intersect(a);
        prop_assert_eq!(i1, i2);
        prop_assert!(a.contains_rect(i1));
        prop_assert!(b.contains_rect(i1));
        prop_assert!(a.hull(b).contains_rect(a));
        prop_assert!(a.hull(b).contains_rect(b));
        prop_assert!((a.intersection_area(b) - b.intersection_area(a)).abs() < 1e-9);
    }

    /// Minkowski sum of boxes equals interval sums; commutative.
    #[test]
    fn minkowski_commutes(a in rect(), b in rect()) {
        use iloc::geometry::minkowski_sum;
        prop_assert_eq!(minkowski_sum(a, b), minkowski_sum(b, a));
        let s = minkowski_sum(a, b);
        prop_assert!((s.width() - (a.width() + b.width())).abs() < 1e-9);
        prop_assert!((s.height() - (a.height() + b.height())).abs() < 1e-9);
    }

    /// Piecewise-linear integrals are additive over adjacent intervals.
    #[test]
    fn piecewise_integral_additive(
        knots in proptest::collection::vec((0.0..100.0f64, 0.0..10.0f64), 2..8),
        split in 0.0..1.0f64,
    ) {
        let mut xs: Vec<f64> = knots.iter().map(|k| k.0).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        prop_assume!(xs.len() >= 2);
        let pl = PiecewiseLinear::new(
            xs.iter().zip(&knots).map(|(&x, k)| (x, k.1)).collect(),
        );
        let sup = pl.support();
        let mid = sup.lo + split * sup.length();
        let total = pl.integral_over(sup);
        let left = pl.integral_over(Interval::new(sup.lo, mid));
        let right = pl.integral_over(Interval::new(mid, sup.hi));
        prop_assert!((left + right - total).abs() < 1e-9 * (1.0 + total.abs()));
    }

    /// Lemma 1 via the closed form: zero probability iff no overlap
    /// with the expanded query (up to boundary measure-zero cases).
    #[test]
    fn minkowski_filter_is_exact(u0 in rect(), ui in rect(), r in range_spec()) {
        let expanded = u0.expand(r.w, r.h);
        let pi = closed::uniform_uniform(u0, ui, r, expanded);
        prop_assert!((0.0..=1.0).contains(&pi));
        if !ui.overlaps(expanded) {
            prop_assert_eq!(pi, 0.0);
        }
        if pi > 0.0 {
            prop_assert!(ui.overlaps(expanded));
        }
    }

    /// The closed form agrees with midpoint quadrature.
    #[test]
    fn closed_form_matches_grid(u0 in rect(), ui in rect(), r in range_spec()) {
        let expanded = u0.expand(r.w, r.h);
        let exact = closed::uniform_uniform(u0, ui, r, expanded);
        let issuer = UniformPdf::new(u0);
        let object = UniformPdf::new(ui);
        let mut stats = QueryStats::new();
        let approx = iloc::core::integrate::grid::object_probability(
            &issuer, r, &object, expanded, 64, &mut stats,
        );
        prop_assert!((exact - approx).abs() < 0.02, "exact {} vs grid {}", exact, approx);
    }

    /// Uniform p-bounds cut exactly p mass on each side and nest.
    #[test]
    fn pbound_tail_mass(u0 in rect(), p in 0.0..0.5f64) {
        let pdf = UniformPdf::new(u0);
        let b = PBound::compute(&pdf, p);
        let left = pdf.marginal_cdf(Axis::X, b.left());
        let right = 1.0 - pdf.marginal_cdf(Axis::X, b.right());
        prop_assert!((left - p).abs() < 1e-9);
        prop_assert!((right - p).abs() < 1e-9);
        prop_assert!(u0.contains_rect(b.rect));
    }

    /// Lemma 5 soundness: a point object outside the p-expanded query
    /// has qualification probability at most p.
    #[test]
    fn p_expanded_query_soundness(
        u0 in rect(),
        r in range_spec(),
        qp in 0.0..1.0f64,
        sx in coord(),
        sy in coord(),
    ) {
        let issuer = Issuer::uniform(u0);
        let (level, pexp) = p_expanded_query(&issuer, r, qp);
        prop_assert!(level <= qp);
        let s = Point::new(sx, sy);
        if !pexp.contains_point(s) {
            let pi = issuer.pdf().prob_in_rect(r.at(s));
            prop_assert!(pi <= level + 1e-9, "pi={} level={}", pi, level);
        }
    }

    /// C-IUQ pruning soundness on random uniform objects: anything
    /// pruned truly falls below the threshold.
    #[test]
    fn pruning_soundness(
        u0 in rect(),
        ui in rect(),
        r in range_spec(),
        qp in 0.01..0.95f64,
    ) {
        let issuer = Issuer::uniform(u0);
        let object = UncertainObject::new(7u64, UniformPdf::new(ui));
        let expanded = minkowski_query(&issuer, r);
        let (_, p_expanded) = p_expanded_query(&issuer, r, qp);
        let ctx = PruneContext { qp, expanded, p_expanded, issuer: &issuer, range: r };
        if try_prune(&object, &ctx) != PruneOutcome::Keep {
            let mut stats = QueryStats::new();
            let mut rng = StdRng::seed_from_u64(1);
            let pi = Integrator::Exact.object_probability(
                issuer.pdf(), r, object.pdf(), expanded, &mut rng, &mut stats,
            );
            prop_assert!(pi <= qp + 1e-9, "pruned but pi={} > qp={}", pi, qp);
        }
    }

    /// IPQ answers from the engine match per-object closed forms, for
    /// arbitrary small point sets.
    #[test]
    fn engine_matches_oracle(
        pts in proptest::collection::vec((0.0..1_000.0f64, 0.0..1_000.0f64), 1..40),
        cx in 100.0..900.0f64,
        cy in 100.0..900.0f64,
        u in 10.0..200.0f64,
        w in 10.0..300.0f64,
    ) {
        let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let engine = PointEngine::build(points.clone());
        let issuer = Issuer::uniform(Rect::centered(Point::new(cx, cy), u, u));
        let range = RangeSpec::square(w);
        let ans = engine.ipq(&issuer, range);
        for (k, p) in points.iter().enumerate() {
            let pi = issuer.pdf().prob_in_rect(range.at(*p));
            let got = ans.probability_of(iloc::uncertainty::ObjectId(k as u64));
            if pi > 0.0 {
                prop_assert!((got.unwrap_or(-1.0) - pi).abs() < 1e-12);
            } else {
                prop_assert_eq!(got, None);
            }
        }
    }
}

proptest! {
    // Heavier cases: fewer iterations.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Monte-Carlo converges to the closed form (statistical bound).
    /// The object is generated *near* the issuer so the probability is
    /// usually non-trivial.
    #[test]
    fn mc_converges_to_closed_form(
        u0 in rect(),
        dx in -400.0..400.0f64,
        dy in -400.0..400.0f64,
        ow in 1.0..400.0f64,
        oh in 1.0..400.0f64,
        r in range_spec(),
    ) {
        let ui = Rect::centered(u0.center().translate(dx, dy), ow, oh);
        let expanded = u0.expand(r.w, r.h);
        let exact = closed::uniform_uniform(u0, ui, r, expanded);
        prop_assume!(exact > 0.05 && exact < 0.95);
        let issuer = UniformPdf::new(u0);
        let object = UniformPdf::new(ui);
        let mut stats = QueryStats::new();
        let mut rng = StdRng::seed_from_u64(12345);
        let est = iloc::core::integrate::mc::object_probability(
            &issuer, r, &object, 20_000, &mut rng, &mut stats,
        );
        // 20k samples of a [0,1] value: σ ≤ 0.5/√20000 ≈ 0.0035;
        // allow 6σ.
        prop_assert!((est - exact).abs() < 0.022, "est {} vs exact {}", est, exact);
    }

    /// The Gaussian issuer's probabilities are consistent between the
    /// engine's exact path and its grid integrator.
    #[test]
    fn gaussian_exact_vs_grid(u0 in rect(), r in range_spec(), sx in coord(), sy in coord()) {
        let issuer = Issuer::gaussian(u0);
        let s = Point::new(sx, sy);
        let exact = issuer.pdf().prob_in_rect(r.at(s));
        let mut stats = QueryStats::new();
        let approx = iloc::core::integrate::grid::point_probability(
            issuer.pdf(), r, s, 80, &mut stats,
        );
        prop_assert!((exact - approx).abs() < 0.02, "exact {} vs grid {}", exact, approx);
    }

    /// Disc pdf rectangle masses agree with quadrature over the disc
    /// density (validating the closed-form circle/box intersection).
    #[test]
    fn disc_mass_matches_quadrature(
        cx in 0.0..1_000.0f64,
        cy in 0.0..1_000.0f64,
        radius in 5.0..200.0f64,
        qx in -0.5..0.5f64,
        qy in -0.5..0.5f64,
        qw in 5.0..300.0f64,
        qh in 5.0..300.0f64,
    ) {
        use iloc::uncertainty::DiscPdf;
        let pdf = DiscPdf::new(Point::new(cx, cy), radius);
        // Query rect placed relative to the disc so overlap is common.
        let q = Rect::centered(
            Point::new(cx + qx * 2.0 * radius, cy + qy * 2.0 * radius),
            qw,
            qh,
        );
        let exact = pdf.prob_in_rect(q);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&exact));
        let domain = pdf.region().intersect(q);
        let mut approx = 0.0;
        if !domain.is_empty() && domain.area() > 0.0 {
            let n = 150;
            let (dx, dy) = (domain.width() / n as f64, domain.height() / n as f64);
            for i in 0..n {
                for j in 0..n {
                    let p = Point::new(
                        domain.min.x + (i as f64 + 0.5) * dx,
                        domain.min.y + (j as f64 + 0.5) * dy,
                    );
                    approx += pdf.density(p) * dx * dy;
                }
            }
        }
        prop_assert!((exact - approx).abs() < 0.02, "exact {} vs grid {}", exact, approx);
    }

    /// The separable Gaussian closed form agrees with quadrature on
    /// random configurations (the new exact IUQ path).
    #[test]
    fn separable_gaussian_closed_form_is_exact(
        u0 in rect(),
        dx in -600.0..600.0f64,
        dy in -600.0..600.0f64,
        ow in 10.0..300.0f64,
        oh in 10.0..300.0f64,
        r in range_spec(),
    ) {
        use iloc::uncertainty::TruncatedGaussianPdf;
        let ui = Rect::centered(u0.center().translate(dx, dy), ow, oh);
        let object = TruncatedGaussianPdf::paper_default(ui);
        let issuer = UniformPdf::new(u0);
        let expanded = u0.expand(r.w, r.h);
        let exact = closed::uniform_separable(u0, &object, r, expanded)
            .expect("gaussian objects are separable");
        prop_assert!((0.0..=1.0 + 1e-9).contains(&exact));
        let mut stats = QueryStats::new();
        let approx = iloc::core::integrate::grid::object_probability(
            &issuer, r, &object, expanded, 100, &mut stats,
        );
        prop_assert!((exact - approx).abs() < 0.02, "exact {} vs grid {}", exact, approx);
    }

    /// Mixture masses are the weighted sum of component masses, for
    /// arbitrary rectangles and weights.
    #[test]
    fn mixture_mass_is_weighted_sum(
        a in rect(),
        b in rect(),
        w1 in 0.1..10.0f64,
        w2 in 0.1..10.0f64,
        q in rect(),
    ) {
        use iloc::uncertainty::{MixturePdf, LocationPdf as _};
        let pa = UniformPdf::new(a);
        let pb = UniformPdf::new(b);
        let expect = (w1 * pa.prob_in_rect(q) + w2 * pb.prob_in_rect(q)) / (w1 + w2);
        let m = MixturePdf::bimodal(w1, pa, w2, pb);
        prop_assert!((m.prob_in_rect(q) - expect).abs() < 1e-12);
    }
}
