//! Qualification-probability integrators.
//!
//! All refinement reduces to two integrals (after the duality
//! transformation of Section 4.2):
//!
//! * **point objects** (Lemma 3): `pi = ∫_{R(xi,yi) ∩ U0} f0`, i.e. the
//!   issuer-pdf mass of one rectangle;
//! * **uncertain objects** (Lemma 4, Eq. 8):
//!   `pi = ∫_{Ui ∩ (R ⊕ U0)} fi(x,y) · Q(x,y) dx dy` with
//!   `Q(x,y) = ∫_{R(x,y) ∩ U0} f0`.
//!
//! Three interchangeable strategies compute them: the exact closed form
//! (uniform pdfs, [`closed`]), midpoint-grid quadrature ([`grid`]), and
//! Monte-Carlo sampling ([`mc`], the paper's choice for non-uniform
//! pdfs in Figure 13). [`Integrator::Auto`] picks the exact path when
//! the pdfs allow it and falls back to Monte-Carlo with the paper's
//! sensitivity-tuned sample counts (200 points / 250 uncertain).

pub mod closed;
pub mod grid;
pub mod mc;

use iloc_geometry::{Point, Rect};
use iloc_uncertainty::{LocationPdf, PdfKind};
use rand::rngs::StdRng;

use crate::query::RangeSpec;
use crate::stats::QueryStats;

/// Paper Section 6 ("Non-Uniform Distribution"): at least 200 samples
/// for C-IPQ accuracy.
pub const PAPER_MC_SAMPLES_POINT: usize = 200;
/// Paper Section 6: at least 250 samples for C-IUQ accuracy.
pub const PAPER_MC_SAMPLES_UNCERTAIN: usize = 250;

/// Strategy for evaluating qualification probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Integrator {
    /// Exact where possible (uniform pdfs, or any pdf for point
    /// objects via its closed rectangle mass); Monte-Carlo with the
    /// paper's sample counts otherwise.
    Auto,
    /// Closed forms only.
    ///
    /// Point objects accept any issuer pdf (Lemma 3 needs one
    /// rectangle-mass lookup, exact for every pdf in this workspace);
    /// uncertain objects require **both** pdfs uniform (Eq. 8
    /// separability). Panics otherwise — ask for `Auto` instead.
    Exact,
    /// Midpoint-rule quadrature with `per_axis`² cells over the
    /// integration domain.
    Grid {
        /// Cells per axis.
        per_axis: usize,
    },
    /// Monte-Carlo estimation (the paper's method for non-uniform
    /// pdfs).
    MonteCarlo {
        /// Number of samples per probability evaluation.
        samples: usize,
    },
}

impl Integrator {
    /// Qualification probability of a **point object** at `loc`
    /// (Lemma 3: `∫_{R(loc) ∩ U0} f0`).
    ///
    /// Takes the issuer pdf as a [`PdfKind`] so the closed rectangle
    /// mass of the concrete pdfs inlines into the per-candidate loop.
    #[inline]
    pub fn point_probability(
        &self,
        issuer_pdf: &PdfKind,
        range: RangeSpec,
        loc: Point,
        rng: &mut StdRng,
        stats: &mut QueryStats,
    ) -> f64 {
        stats.prob_evals += 1;
        match *self {
            Integrator::Auto | Integrator::Exact => issuer_pdf.prob_in_rect(range.at(loc)),
            Integrator::Grid { per_axis } => {
                grid::point_probability(issuer_pdf, range, loc, per_axis, stats)
            }
            Integrator::MonteCarlo { samples } => {
                mc::point_probability(issuer_pdf, range, loc, samples, rng, stats)
            }
        }
    }

    /// Qualification probability of an **uncertain object** (Lemma 4 /
    /// Eq. 8). `expanded` is the pre-computed `R ⊕ U0`.
    ///
    /// Takes both pdfs as [`PdfKind`]s: `Auto`'s closed-form arm
    /// matches on the concrete variants, so the uniform/uniform and
    /// uniform/Gaussian paths monomorphise and inline instead of going
    /// through two layers of `dyn` dispatch.
    #[inline]
    pub fn object_probability(
        &self,
        issuer_pdf: &PdfKind,
        range: RangeSpec,
        object_pdf: &PdfKind,
        expanded: Rect,
        rng: &mut StdRng,
        stats: &mut QueryStats,
    ) -> f64 {
        stats.prob_evals += 1;
        match *self {
            Integrator::Auto => {
                // Exact whenever the issuer is uniform and the object
                // pdf is axis-separable (uniform, truncated Gaussian);
                // the paper's Monte-Carlo otherwise. The nested match
                // statically dispatches the two common object kinds.
                let exact = match (issuer_pdf.uniform_region(), object_pdf) {
                    (Some(u0), PdfKind::Uniform(ui)) => {
                        Some(closed::uniform_uniform(u0, ui.region(), range, expanded))
                    }
                    (Some(u0), PdfKind::Gaussian(g)) => {
                        closed::uniform_separable(u0, g, range, expanded)
                    }
                    (Some(u0), other) => closed::uniform_separable(u0, other, range, expanded),
                    (None, _) => None,
                };
                match exact {
                    Some(p) => p,
                    None => mc::object_probability(
                        issuer_pdf,
                        range,
                        object_pdf,
                        PAPER_MC_SAMPLES_UNCERTAIN,
                        rng,
                        stats,
                    ),
                }
            }
            Integrator::Exact => {
                let u0 = issuer_pdf
                    .uniform_region()
                    .expect("Integrator::Exact requires a uniform issuer pdf for IUQ");
                let ui = object_pdf
                    .uniform_region()
                    .expect("Integrator::Exact requires uniform object pdfs for IUQ");
                closed::uniform_uniform(u0, ui, range, expanded)
            }
            Integrator::Grid { per_axis } => {
                grid::object_probability(issuer_pdf, range, object_pdf, expanded, per_axis, stats)
            }
            Integrator::MonteCarlo { samples } => {
                mc::object_probability(issuer_pdf, range, object_pdf, samples, rng, stats)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc_geometry::minkowski::expand_query;
    use iloc_uncertainty::{TruncatedGaussianPdf, UniformPdf};
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    /// All integrators must agree on a uniform/uniform configuration.
    #[test]
    fn integrators_agree_on_uniform_case() {
        let issuer = PdfKind::from(UniformPdf::new(Rect::from_coords(0.0, 0.0, 100.0, 100.0)));
        let object = PdfKind::from(UniformPdf::new(Rect::from_coords(80.0, 80.0, 160.0, 160.0)));
        let range = RangeSpec::square(30.0);
        let expanded = expand_query(issuer.region(), range.w, range.h);

        let mut stats = QueryStats::new();
        let exact = Integrator::Exact.object_probability(
            &issuer,
            range,
            &object,
            expanded,
            &mut rng(),
            &mut stats,
        );
        let gridv = Integrator::Grid { per_axis: 200 }.object_probability(
            &issuer,
            range,
            &object,
            expanded,
            &mut rng(),
            &mut stats,
        );
        let mcv = Integrator::MonteCarlo { samples: 60_000 }.object_probability(
            &issuer,
            range,
            &object,
            expanded,
            &mut rng(),
            &mut stats,
        );
        let auto = Integrator::Auto.object_probability(
            &issuer,
            range,
            &object,
            expanded,
            &mut rng(),
            &mut stats,
        );
        assert!(exact > 0.0 && exact < 1.0, "non-trivial case: {exact}");
        assert_eq!(auto, exact, "Auto must take the exact path");
        assert!(
            (gridv - exact).abs() < 1e-3,
            "grid {gridv} vs exact {exact}"
        );
        assert!((mcv - exact).abs() < 0.01, "mc {mcv} vs exact {exact}");
        assert!(stats.mc_samples >= 60_000);
        assert!(stats.grid_cells > 0);
    }

    #[test]
    fn point_probability_matches_across_integrators() {
        let issuer = PdfKind::from(TruncatedGaussianPdf::paper_default(Rect::from_coords(
            0.0, 0.0, 120.0, 120.0,
        )));
        let range = RangeSpec::square(40.0);
        let loc = Point::new(100.0, 60.0);
        let mut stats = QueryStats::new();
        let exact =
            Integrator::Exact.point_probability(&issuer, range, loc, &mut rng(), &mut stats);
        let gridv = Integrator::Grid { per_axis: 300 }.point_probability(
            &issuer,
            range,
            loc,
            &mut rng(),
            &mut stats,
        );
        let mcv = Integrator::MonteCarlo { samples: 100_000 }.point_probability(
            &issuer,
            range,
            loc,
            &mut rng(),
            &mut stats,
        );
        assert!(exact > 0.0 && exact < 1.0);
        assert!(
            (gridv - exact).abs() < 2e-3,
            "grid {gridv} vs exact {exact}"
        );
        assert!((mcv - exact).abs() < 0.01, "mc {mcv} vs exact {exact}");
    }

    #[test]
    #[should_panic(expected = "uniform")]
    fn exact_rejects_gaussian_object() {
        let issuer = PdfKind::from(UniformPdf::new(Rect::from_coords(0.0, 0.0, 10.0, 10.0)));
        let object = PdfKind::from(TruncatedGaussianPdf::paper_default(Rect::from_coords(
            5.0, 5.0, 15.0, 15.0,
        )));
        let range = RangeSpec::square(2.0);
        let expanded = expand_query(issuer.region(), 2.0, 2.0);
        let mut stats = QueryStats::new();
        let _ = Integrator::Exact.object_probability(
            &issuer,
            range,
            &object,
            expanded,
            &mut rng(),
            &mut stats,
        );
    }

    #[test]
    fn auto_takes_exact_path_for_gaussian_objects() {
        // Uniform issuer + axis-separable (Gaussian) object: Auto must
        // use the closed form — zero sampling — and agree with fine
        // quadrature.
        let issuer = PdfKind::from(UniformPdf::new(Rect::from_coords(0.0, 0.0, 100.0, 100.0)));
        let object = PdfKind::from(TruncatedGaussianPdf::paper_default(Rect::from_coords(
            60.0, 60.0, 140.0, 140.0,
        )));
        let range = RangeSpec::square(30.0);
        let expanded = expand_query(issuer.region(), 30.0, 30.0);
        let mut stats = QueryStats::new();
        let auto = Integrator::Auto.object_probability(
            &issuer,
            range,
            &object,
            expanded,
            &mut rng(),
            &mut stats,
        );
        assert_eq!(stats.mc_samples, 0, "closed form must not sample");
        let reference = Integrator::Grid { per_axis: 250 }.object_probability(
            &issuer,
            range,
            &object,
            expanded,
            &mut rng(),
            &mut stats,
        );
        assert!(
            (auto - reference).abs() < 2e-3,
            "auto {auto} vs ref {reference}"
        );
    }

    #[test]
    fn auto_falls_back_to_mc_for_non_separable_cases() {
        use iloc_geometry::Point;
        use iloc_uncertainty::DiscPdf;
        // A disc object is not axis-separable: Auto must fall back to
        // the paper's Monte-Carlo with its calibrated sample count.
        let issuer = PdfKind::from(UniformPdf::new(Rect::from_coords(0.0, 0.0, 100.0, 100.0)));
        let object = PdfKind::from(DiscPdf::new(Point::new(110.0, 50.0), 30.0));
        let range = RangeSpec::square(30.0);
        let expanded = expand_query(issuer.region(), 30.0, 30.0);
        let mut stats = QueryStats::new();
        let auto = Integrator::Auto.object_probability(
            &issuer,
            range,
            &object,
            expanded,
            &mut rng(),
            &mut stats,
        );
        assert_eq!(stats.mc_samples as usize, PAPER_MC_SAMPLES_UNCERTAIN);
        let reference = Integrator::Grid { per_axis: 250 }.object_probability(
            &issuer,
            range,
            &object,
            expanded,
            &mut rng(),
            &mut stats,
        );
        assert!(
            (auto - reference).abs() < 0.08,
            "auto {auto} vs ref {reference}"
        );
    }
}
