//! Database object types: point objects `Si` and uncertain objects `Oi`.

use std::fmt;

use iloc_geometry::{Point, Rect};

use crate::catalog::UCatalog;
use crate::kind::PdfKind;
use crate::pdf::{LocationPdf, SharedPdf};

/// Opaque object identifier (`Si` / `Oi` subscripts in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u64);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u64> for ObjectId {
    fn from(v: u64) -> Self {
        ObjectId(v)
    }
}

/// A **point object** `Si`: an exactly-known location (a shop, a
/// building, a non-moving user). Queried by IPQ / C-IPQ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointObject {
    /// Identifier.
    pub id: ObjectId,
    /// Exact location `(xi, yi)`.
    pub loc: Point,
}

impl PointObject {
    /// Creates a point object.
    pub fn new(id: impl Into<ObjectId>, loc: Point) -> Self {
        PointObject { id: id.into(), loc }
    }
}

/// An **uncertain object** `Oi`: an uncertainty region plus pdf
/// (a moving vehicle, a privacy-cloaked user). Queried by IUQ / C-IUQ.
///
/// Each object carries its pre-computed [`UCatalog`] (paper Section 5);
/// building it is part of data ingestion, not of query execution,
/// matching the paper's cost model.
#[derive(Debug, Clone)]
pub struct UncertainObject {
    /// Identifier.
    pub id: ObjectId,
    pdf: PdfKind,
    catalog: UCatalog,
}

impl UncertainObject {
    /// Creates an uncertain object with the paper's default six-level
    /// U-catalog. Accepts any workspace pdf type, a [`PdfKind`], or a
    /// [`SharedPdf`]; wrap other [`LocationPdf`] implementations with
    /// [`PdfKind::shared`].
    pub fn new(id: impl Into<ObjectId>, pdf: impl Into<PdfKind>) -> Self {
        let pdf = pdf.into();
        let catalog = UCatalog::build_default(&pdf);
        UncertainObject {
            id: id.into(),
            pdf,
            catalog,
        }
    }

    /// Creates an uncertain object from an already-shared pdf.
    pub fn from_shared(id: impl Into<ObjectId>, pdf: SharedPdf) -> Self {
        UncertainObject::new(id, PdfKind::from(pdf))
    }

    /// Creates an uncertain object with custom catalog levels.
    pub fn with_catalog_levels(
        id: impl Into<ObjectId>,
        pdf: impl Into<PdfKind>,
        levels: &[f64],
    ) -> Self {
        let pdf = pdf.into();
        let catalog = UCatalog::build(&pdf, levels);
        UncertainObject {
            id: id.into(),
            pdf,
            catalog,
        }
    }

    /// The uncertainty pdf `fi`, statically dispatched over the
    /// concrete pdf types (coerces to `&dyn LocationPdf` where needed).
    pub fn pdf(&self) -> &PdfKind {
        &self.pdf
    }

    /// The uncertainty region `Ui`.
    pub fn region(&self) -> Rect {
        self.pdf.region()
    }

    /// The pre-computed U-catalog.
    pub fn catalog(&self) -> &UCatalog {
        &self.catalog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform::UniformPdf;

    #[test]
    fn point_object_construction() {
        let s = PointObject::new(3u64, Point::new(1.0, 2.0));
        assert_eq!(s.id, ObjectId(3));
        assert_eq!(s.loc, Point::new(1.0, 2.0));
        assert_eq!(s.id.to_string(), "#3");
    }

    #[test]
    fn uncertain_object_builds_default_catalog() {
        let o = UncertainObject::new(1u64, UniformPdf::new(Rect::from_coords(0.0, 0.0, 4.0, 4.0)));
        assert_eq!(o.catalog().len(), 6);
        assert_eq!(o.region(), Rect::from_coords(0.0, 0.0, 4.0, 4.0));
    }

    #[test]
    fn custom_catalog_levels() {
        let o = UncertainObject::with_catalog_levels(
            2u64,
            UniformPdf::new(Rect::from_coords(0.0, 0.0, 4.0, 4.0)),
            &[0.25],
        );
        let levels: Vec<f64> = o.catalog().levels().collect();
        assert_eq!(levels, vec![0.0, 0.25]);
    }

    #[test]
    fn shared_pdf_is_shared() {
        use std::sync::Arc;
        let pdf: SharedPdf = Arc::new(UniformPdf::new(Rect::from_coords(0.0, 0.0, 1.0, 1.0)));
        let o = UncertainObject::from_shared(5u64, Arc::clone(&pdf));
        assert_eq!(o.pdf().region(), pdf.region());
    }
}
