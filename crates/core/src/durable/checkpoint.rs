//! Binary checkpoints of per-shard catalog state.
//!
//! A checkpoint file `ckpt-<epoch>.bin` is a sequence of framed
//! records (see [`super`]):
//!
//! ```text
//! header  := magic "ILOCCKP1" | epoch u64 | shard_count u32 | total u64
//! shard k := index u32 | count u32 | object × count      (k = 0..shard_count)
//! footer  := magic "ILOCCKPE" | epoch u64
//! ```
//!
//! The footer proves the file is complete; a checkpoint missing it (or
//! failing any record checksum, or disagreeing with its own header) is
//! skipped and recovery falls back to the next-older one. Files are
//! written to a temp name, fsync'd, then renamed in — a crash mid-write
//! leaves only a temp file the next startup sweeps away.

use std::fs::{self, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use super::codec::{put_u32, put_u64, Cursor, DurableObject};
use super::wal::sync_dir;
use super::{begin_record, finish_record, RecordScanner, StoreError};

const HEADER_MAGIC: &[u8; 8] = b"ILOCCKP1";
const FOOTER_MAGIC: &[u8; 8] = b"ILOCCKPE";

/// Shard counts above this are not a checkpoint we wrote.
const MAX_SHARDS: u32 = 1 << 20;

fn checkpoint_name(epoch: u64) -> String {
    format!("ckpt-{epoch:020}.bin")
}

fn parse_checkpoint_name(name: &str) -> Option<u64> {
    let stem = name.strip_prefix("ckpt-")?.strip_suffix(".bin")?;
    if stem.len() != 20 || !stem.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    stem.parse().ok()
}

/// A successfully loaded and validated checkpoint.
#[derive(Debug)]
pub(crate) struct LoadedCheckpoint<O> {
    /// The epoch the snapshot was taken at.
    pub epoch: u64,
    /// Every live object, in shard order. (The writer's shard count is
    /// validated but not kept — recovery may rebuild at any count;
    /// answers are bit-identical across shard counts.)
    pub objects: Vec<O>,
}

/// What scanning the checkpoint directory found.
#[derive(Debug, Default)]
pub(crate) struct CheckpointScan<O> {
    /// The newest checkpoint that validated end to end, if any.
    pub loaded: Option<LoadedCheckpoint<O>>,
    /// Newer checkpoint files that failed validation and were skipped.
    pub invalid: usize,
}

impl<O> CheckpointScan<O> {
    fn empty() -> Self {
        CheckpointScan {
            loaded: None,
            invalid: 0,
        }
    }
}

/// Writes a checkpoint of `shards` (per-shard object slices, in shard
/// order) taken at `epoch`, atomically: temp file, fsync, rename,
/// directory fsync. Also sweeps any stale temp file a crashed writer
/// left behind.
pub(crate) fn write_checkpoint<O: DurableObject>(
    dir: &Path,
    epoch: u64,
    shards: &[&[O]],
    buf: &mut Vec<u8>,
) -> Result<PathBuf, StoreError> {
    fs::create_dir_all(dir)?;
    let total: u64 = shards.iter().map(|s| s.len() as u64).sum();

    buf.clear();
    let at = begin_record(buf);
    buf.extend_from_slice(HEADER_MAGIC);
    put_u64(buf, epoch);
    put_u32(buf, shards.len() as u32);
    put_u64(buf, total);
    finish_record(buf, at);
    for (k, shard) in shards.iter().enumerate() {
        let at = begin_record(buf);
        put_u32(buf, k as u32);
        put_u32(buf, shard.len() as u32);
        for o in shard.iter() {
            o.encode(buf)?;
        }
        finish_record(buf, at);
    }
    let at = begin_record(buf);
    buf.extend_from_slice(FOOTER_MAGIC);
    put_u64(buf, epoch);
    finish_record(buf, at);

    let path = dir.join(checkpoint_name(epoch));
    let tmp = dir.join(format!("{}.tmp", checkpoint_name(epoch)));
    {
        let mut f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(buf)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, &path)?;
    sync_dir(dir);
    Ok(path)
}

/// Loads the newest checkpoint that validates end to end, counting
/// (and leaving in place) newer ones that do not. Stale `.tmp` files
/// from a crashed writer are removed.
pub(crate) fn load_latest<O: DurableObject>(dir: &Path) -> Result<CheckpointScan<O>, StoreError> {
    if !dir.exists() {
        return Ok(CheckpointScan::empty());
    }
    let mut candidates: Vec<(u64, PathBuf)> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.ends_with(".tmp") && name.starts_with("ckpt-") {
            let _ = fs::remove_file(entry.path());
            continue;
        }
        if let Some(epoch) = parse_checkpoint_name(name) {
            candidates.push((epoch, entry.path()));
        }
    }
    candidates.sort_unstable_by_key(|(epoch, _)| std::cmp::Reverse(*epoch));

    let mut scan = CheckpointScan::empty();
    for (epoch, path) in candidates {
        let bytes = fs::read(&path)?;
        match validate::<O>(&bytes, epoch) {
            Ok(loaded) => {
                scan.loaded = Some(loaded);
                return Ok(scan);
            }
            Err(_) => scan.invalid += 1,
        }
    }
    Ok(scan)
}

/// Deletes all but the newest `keep` checkpoint files.
pub(crate) fn prune(dir: &Path, keep: usize) -> Result<(), StoreError> {
    let mut files: Vec<(u64, PathBuf)> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(epoch) = entry.file_name().to_str().and_then(parse_checkpoint_name) {
            files.push((epoch, entry.path()));
        }
    }
    files.sort_unstable_by_key(|(epoch, _)| std::cmp::Reverse(*epoch));
    for (_, path) in files.into_iter().skip(keep) {
        fs::remove_file(path)?;
    }
    Ok(())
}

fn validate<O: DurableObject>(
    bytes: &[u8],
    name_epoch: u64,
) -> Result<LoadedCheckpoint<O>, StoreError> {
    let mut scan = RecordScanner::new(bytes);
    let header = scan
        .next_record()
        .ok_or(StoreError::Corrupt("missing checkpoint header"))?;
    let mut c = Cursor::new(header);
    let mut magic = [0u8; 8];
    for b in &mut magic {
        *b = c.u8()?;
    }
    if &magic != HEADER_MAGIC {
        return Err(StoreError::Corrupt("bad checkpoint magic"));
    }
    let epoch = c.u64()?;
    if epoch != name_epoch {
        return Err(StoreError::Corrupt(
            "checkpoint epoch disagrees with file name",
        ));
    }
    let shard_count = c.u32()?;
    if shard_count == 0 || shard_count > MAX_SHARDS {
        return Err(StoreError::Corrupt("checkpoint shard count out of bounds"));
    }
    let total = c.u64()?;
    c.done()?;

    let mut objects: Vec<O> = Vec::new();
    for k in 0..shard_count {
        let shard = scan
            .next_record()
            .ok_or(StoreError::Corrupt("missing shard record"))?;
        let mut c = Cursor::new(shard);
        if c.u32()? != k {
            return Err(StoreError::Corrupt("shard record out of order"));
        }
        let count = c.u32()?;
        // The smallest object is 9 payload bytes; a count the record
        // cannot possibly hold must not size an allocation or a loop.
        if count as usize * 9 > shard.len() {
            return Err(StoreError::Corrupt("shard object count out of bounds"));
        }
        for _ in 0..count {
            objects.push(O::decode(&mut c)?);
        }
        c.done()?;
    }
    if objects.len() as u64 != total {
        return Err(StoreError::Corrupt("checkpoint object total disagrees"));
    }
    let footer = scan
        .next_record()
        .ok_or(StoreError::Corrupt("missing checkpoint footer"))?;
    let mut c = Cursor::new(footer);
    for b in &mut magic {
        *b = c.u8()?;
    }
    if &magic != FOOTER_MAGIC {
        return Err(StoreError::Corrupt("bad checkpoint footer magic"));
    }
    if c.u64()? != epoch {
        return Err(StoreError::Corrupt("checkpoint footer epoch disagrees"));
    }
    c.done()?;
    if scan.next_record().is_some() || scan.torn_reason().is_some() {
        return Err(StoreError::Corrupt(
            "trailing bytes after checkpoint footer",
        ));
    }
    Ok(LoadedCheckpoint { epoch, objects })
}
